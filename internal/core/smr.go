package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/gpm"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// SMR: state machine replication (Section III-B of the paper). Clients
// broadcast transactions through the total order broadcast service; every
// replica executes every delivered transaction in slot order and answers
// the client, who takes the first answer. A replica crash is transparent
// as long as one replica survives.
//
// Reconfiguration: a replica that suspects another broadcasts a
// reconfiguration request carrying the sequence number of the last
// ordered transaction (but not the snapshot); the incoming replica
// fetches the snapshot from the proposer and buffers deliveries made in
// the meantime.

// SMRAddReplica is the reconfiguration request, ordered through the
// broadcast service.
type SMRAddReplica struct {
	// New is the joining replica, Remove the suspected one (may be
	// empty), Proposer the replica that will push the snapshot.
	New      msg.Loc
	Remove   msg.Loc
	Proposer msg.Loc
}

// SMRReplica is one state machine replica. It implements gpm.Process.
type SMRReplica struct {
	slf      msg.Loc
	exec     *Executor
	lastSlot int
	// active is false for a joining replica until its snapshot arrives.
	active bool
	// buffer holds deliveries made while inactive.
	buffer []broadcast.Deliver
	// snap assembles an incoming state transfer.
	snap *smrSnap
	// stepCost is the virtual CPU of the last step.
	stepCost time.Duration
	// Durability (smr_durable.go). stable journals every applied slot and
	// compacts into a database snapshot; snapSlot is the slot the stored
	// snapshot covers; pending buffers out-of-order deliveries while the
	// slot catch-up fills the gap; peers are who a restarted replica asks
	// for its delta; recoveredLocal reports a restore happened.
	stable         store.Stable
	snapSlot       int
	sinceSnap      int
	pending        map[int]broadcast.Deliver
	peers          []msg.Loc
	recoveredLocal bool
	// view, when set, is the shared membership epoch schedule: ordered
	// member commands refresh the catch-up peer set and trigger the
	// bootstrap snapshot push for replica joins (see onMemberCmd).
	view *member.View
	// Recovery runs in the constructor, before SetView can attach the
	// view, so the epoch schedule restored from the durable snapshot
	// (recEpochs/recJoined) and any member commands replayed from the
	// journal tail (recCmds) are stashed here and folded in by SetView.
	recEpochs []member.Config
	recJoined map[msg.Loc]int
	recCmds   []recMemberCmd
	// Lease-based local reads (lease.go). lease is nil unless
	// EnableLease ran; readReg holds the read-only procedures; readOuts
	// is the reusable serve-path directive buffer (safe because the
	// single-threaded runtime consumes directives before the next Step).
	lease    *leaseState
	readReg  ReadRegistry
	readOuts []msg.Directive
	// ackGap is set when ack gating suppressed a client reply (or quiet
	// catch-up dropped one). The broadcast layer dedups client retries,
	// so a suppressed ack can never be re-elicited by the client; the
	// next time this replica holds a valid lease it re-emits the newest
	// cached result per client instead (see reAck).
	ackGap bool
	// Group commit (smr_durable.go): with gcEvery > 1 client acks are
	// parked until a covering fsync — one fsync per window instead of
	// one per slot — released by count or by the HdrSyncTick timer.
	// unsyncedSlots counts the ack-bearing slots of the open window;
	// ack-free slots (renewals, suppressed replies) defer their fsync
	// to the next ack-bearing window.
	gcEvery       int
	gcDelay       time.Duration
	parked        []msg.Directive
	unsyncedSlots int
	syncTimer     bool
	// Reusable apply-path buffers (applyBatch).
	runBuf []TxRequest
	inRun  map[ckey]bool
}

// ckey identifies a client request without string formatting.
type ckey struct {
	c msg.Loc
	s int64
}

// recMemberCmd is a membership command replayed from the journal before
// the view was attached (see SetView).
type recMemberCmd struct {
	cmd  member.Command
	slot int
}

var _ gpm.Process = (*SMRReplica)(nil)

// NewSMRReplica creates an active replica.
func NewSMRReplica(slf msg.Loc, db *sqldb.DB, reg Registry) *SMRReplica {
	return &SMRReplica{slf: slf, exec: NewExecutor(db, reg), lastSlot: -1, active: true}
}

// NewJoiningSMRReplica creates a replica that waits for a state transfer
// before executing.
func NewJoiningSMRReplica(slf msg.Loc, db *sqldb.DB, reg Registry) *SMRReplica {
	r := NewSMRReplica(slf, db, reg)
	r.active = false
	return r
}

// SetView attaches the shared membership epoch view. Ordered member
// commands then keep the replica's catch-up peer set in sync with the
// epoch schedule, and a replica join makes the deterministic proposer
// push the bootstrap snapshot. A freshly constructed view is first
// brought up to the replica's recovered frontier: the epoch schedule
// restored from the durable snapshot is adopted, then the member
// commands replayed from the journal tail are re-applied in order.
// Without this a restarted replica would execute epoch-N state under an
// epoch-0 view — wrong catch-up peers, wrong snapshot proposer, and
// (with leases) grants accepted from a deposed holder.
func (r *SMRReplica) SetView(v *member.View) {
	r.view = v
	if v == nil {
		return
	}
	if len(r.recEpochs) > 0 || len(r.recJoined) > 0 {
		v.Adopt(r.recEpochs, r.recJoined)
		r.recEpochs, r.recJoined = nil, nil
	}
	for _, rc := range r.recCmds {
		v.Apply(rc.cmd, rc.slot)
	}
	r.recCmds = nil
	r.refreshPeers(v.Current())
}

// refreshPeers derives the catch-up peer set from an epoch config.
func (r *SMRReplica) refreshPeers(cfg member.Config) {
	peers := make([]msg.Loc, 0, len(cfg.Replicas))
	for _, l := range cfg.Replicas {
		if l != r.slf {
			peers = append(peers, l)
		}
	}
	r.peers = peers
}

// Executor exposes the replica's executor.
func (r *SMRReplica) Executor() *Executor { return r.exec }

// Active reports whether the replica executes deliveries.
func (r *SMRReplica) Active() bool { return r.active }

// LastCost returns the virtual CPU cost of the most recent Step.
func (r *SMRReplica) LastCost() time.Duration { return r.stepCost }

// Halted implements gpm.Process.
func (r *SMRReplica) Halted() bool { return false }

// Step implements gpm.Process.
func (r *SMRReplica) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	r.stepCost = 0
	before := r.exec.DB.Stats()
	var outs []msg.Directive
	switch in.Hdr {
	case broadcast.HdrDeliver:
		outs = r.onDeliver(in.Body.(broadcast.Deliver))
	case HdrSnapBegin:
		outs = r.onSnapBegin(in.Body.(SnapBegin))
	case HdrSnapBatch:
		outs = r.onSnapBatch(in.Body.(SnapBatch))
	case HdrSnapEnd:
		outs = r.onSnapEnd(in.Body.(SnapEnd))
	case HdrSMRCatchupReq:
		outs = r.onSMRCatchupReq(in.Body.(SMRCatchupReq))
	case HdrSMRCatchup:
		outs = r.onSMRCatchup(in.Body.(SMRCatchup))
	case HdrRead:
		outs = r.onRead(in.Body.(ReadRequest))
	case HdrLeaseTick:
		outs = r.onLeaseTick()
	case HdrSyncTick:
		outs = r.onSyncTick()
	}
	r.stepCost += r.exec.DB.Engine().CostOf(r.exec.DB.Stats().Sub(before))
	return r, outs
}

func (r *SMRReplica) onDeliver(d broadcast.Deliver) []msg.Directive {
	if d.Slot <= r.lastSlot {
		return nil // duplicate notification from another service node
	}
	if !r.active && r.stable != nil {
		// A durable joiner parks live deliveries by slot until the
		// bootstrap snapshot lands; onSnapEnd then journals and applies
		// them contiguously from the covered slot. (The volatile buffer
		// below keeps arrival order, which can skip a slot when several
		// service nodes fan out concurrently — tolerable without a
		// journal, not with one.)
		if r.pending == nil {
			r.pending = make(map[int]broadcast.Deliver)
		}
		r.pending[d.Slot] = d
		return nil
	}
	if r.active && r.stable != nil {
		return r.durableDeliver(d)
	}
	r.lastSlot = d.Slot
	if !r.active {
		r.buffer = append(r.buffer, d)
		return nil
	}
	return r.applyBatch(d)
}

func (r *SMRReplica) applyBatch(d broadcast.Deliver) []msg.Directive {
	var outs []msg.Directive
	// ackOK gates client acks: with leases enabled only the valid
	// holder answers, so every acknowledged write is in the holder's
	// applied prefix and a local lease read is linearizable. Evaluated
	// per flush because a membership command mid-slot can change it.
	ackOK := func() bool {
		if r.lease == nil {
			return true
		}
		if !r.leaseValid() {
			mAcksSuppressed.Inc()
			r.ackGap = true
			return false
		}
		return true
	}
	// Contiguous runs of plain transactions within the slot's batch are
	// group-committed: one SQL-engine critical section for the whole run
	// instead of a BEGIN..COMMIT per transaction. Reconfigurations ride
	// the same total order but cut the run (they must observe the state
	// up to their own position). The run buffer and membership set are
	// reused across slots to keep the steady-state apply loop quiet.
	run := r.runBuf[:0]
	if r.inRun == nil {
		r.inRun = make(map[ckey]bool)
	}
	clear(r.inRun)
	flush := func() {
		if len(run) == 0 {
			return
		}
		t0 := obs.Default.Now()
		ack := ackOK()
		for _, res := range r.exec.ApplyBatch(run) {
			mSMRCommits.Inc()
			if ack {
				outs = append(outs, msg.Send(res.Client, msg.M(HdrTxResult, res)))
			}
		}
		mSMRApplyNS.Observe(obs.Default.Now() - t0)
		gExecuted.Set(r.exec.Executed)
		run = run[:0]
		clear(r.inRun)
	}
	for _, b := range d.Msgs {
		// Dispatch on the payload tag without splitting: the non-tx tags
		// are all 4 bytes ("add|", "mbr|", "lse|"), and comparing against
		// a constant does not allocate.
		if len(b.Payload) >= 4 && b.Payload[3] == '|' {
			switch string(b.Payload[:4]) {
			case "add|":
				if add, ok := DecodeSMRAdd(b.Payload); ok {
					flush()
					outs = append(outs, r.onAdd(add)...)
					continue
				}
			case "mbr|":
				if cmd, ok := member.DecodeCommand(b.Payload); ok {
					flush()
					outs = append(outs, r.onMemberCmd(cmd, d.Slot)...)
					continue
				}
			case "lse|":
				if ren, ok := DecodeLease(b.Payload); ok {
					// The renewal must observe the prefix before its own
					// slot position (earlier txs in this slot flush
					// first), and later txs in the slot are acked under
					// the new grant.
					flush()
					r.onLeaseGrant(ren, d.Slot)
					continue
				}
			}
		}
		req, err := DecodeTx(b.Payload)
		if err != nil {
			continue
		}
		k := ckey{req.Client, req.Seq}
		if r.inRun[k] {
			// A duplicate of a request already queued in this run: apply
			// the run so the dedup table answers it, as one-by-one
			// application would.
			flush()
		}
		if res, dup := r.exec.Duplicate(req); dup {
			if ackOK() {
				outs = append(outs, msg.Send(req.Client, msg.M(HdrTxResult, res)))
			}
			continue
		}
		run = append(run, req)
		r.inRun[k] = true
	}
	flush()
	r.runBuf = run[:0]
	if r.ackGap && r.leaseValid() {
		r.ackGap = false
		outs = r.reAck(outs)
	}
	return outs
}

// onAdd handles an ordered reconfiguration: the proposer pushes its
// snapshot (reflecting every transaction up to and including this slot)
// to the new replica.
func (r *SMRReplica) onAdd(add SMRAddReplica) []msg.Directive {
	if r.slf != add.Proposer {
		return nil
	}
	return r.pushSnapshot(add.New)
}

// onMemberCmd folds an ordered membership command into the shared
// epoch view. Every replica applies the command at the same slot, so
// they all refresh their catch-up peer sets identically, and for a
// replica join exactly one of them — the deterministic proposer, the
// first replica of the pre-join epoch — pushes the bootstrap snapshot
// (reflecting every transaction up to and including this slot) to the
// joiner. A removed replica simply stops being a fan-out target at the
// next slot: it drains by running out of deliveries, no teardown
// message needed. Apply is idempotent per slot, so a co-located
// sequencer sharing the view may have folded the command first; the
// proposer choice does not depend on who won that race.
func (r *SMRReplica) onMemberCmd(cmd member.Command, slot int) []msg.Directive {
	if r.view == nil {
		// Journal replay runs before SetView attaches the view; stash the
		// command so SetView can fold it in order.
		r.recCmds = append(r.recCmds, recMemberCmd{cmd, slot})
		return nil
	}
	prev := r.view.Current()
	cfg, _ := r.view.Apply(cmd, slot)
	r.refreshPeers(cfg)
	if cmd.Op == member.AddReplica && cfg.HasReplica(cmd.Node) && cmd.Node != r.slf &&
		r.slf == member.Proposer(prev, cmd.Node) {
		mSMRSnapshotsSent.Inc()
		return r.pushSnapshot(cmd.Node)
	}
	return nil
}

// pushSnapshot streams this replica's full state to a peer.
func (r *SMRReplica) pushSnapshot(to msg.Loc) []msg.Directive {
	dumps := r.exec.DB.Snapshot()
	eng := r.exec.DB.Engine()
	schemas := make([]sqldb.CreateTable, len(dumps))
	for i, d := range dumps {
		schemas[i] = d.Schema
	}
	outs := []msg.Directive{msg.Send(to, msg.M(HdrSnapBegin, SnapBegin{
		Schemas: schemas, Order: int64(r.lastSlot),
	}))}
	n := 0
	for _, d := range dumps {
		cols := len(d.Schema.Cols)
		for _, batch := range sqldb.SplitBatches(d, 0) {
			outs = append(outs, msg.Send(to, msg.M(HdrSnapBatch, SnapBatch{
				Table: batch.Table, Rows: batch.Rows, N: n,
			})))
			n++
			r.stepCost += time.Duration(len(batch.Rows)*cols) * eng.PerColSerialize
		}
	}
	end := SnapEnd{
		Order: int64(r.lastSlot), Batches: n,
		Executed: r.exec.Executed, LastSeq: r.exec.LastSeqs(),
		Recent: r.exec.RecentResults(),
	}
	if r.view != nil {
		end.Epochs = r.view.Epochs()
		end.Joined = r.view.Joined()
	}
	outs = append(outs, msg.Send(to, msg.M(HdrSnapEnd, end)))
	return outs
}

// Snapshot reception at the joining replica. The snapshot's Order field
// carries the last SLOT it covers.

var errStray = fmt.Errorf("core: stray snapshot message")

type smrSnap struct {
	schemas  []sqldb.CreateTable
	rows     map[string][][]sqldb.Value
	received int
	// seen dedups batches by index: the transport may duplicate a
	// SnapBatch, and counting it twice would both double its rows and
	// let the assembly "complete" with another batch still missing.
	seen map[int]bool
	end  *SnapEnd
}

// The joining replica reuses snapState via a minimal local assembly.
func (r *SMRReplica) onSnapBegin(s SnapBegin) []msg.Directive {
	r.snap = &smrSnap{schemas: s.Schemas, rows: make(map[string][][]sqldb.Value), seen: make(map[int]bool)}
	return nil
}

func (r *SMRReplica) onSnapBatch(b SnapBatch) []msg.Directive {
	if r.snap == nil {
		return nil
	}
	if r.snap.seen[b.N] {
		return nil // duplicate batch
	}
	r.snap.seen[b.N] = true
	r.snap.rows[b.Table] = append(r.snap.rows[b.Table], b.Rows...)
	r.snap.received++
	r.stepCost += batchRestoreCost(r.exec.DB.Engine(), b.Rows)
	if end := r.snap.end; end != nil && r.snap.received >= end.Batches {
		return r.onSnapEnd(*end)
	}
	return nil
}

func (r *SMRReplica) onSnapEnd(s SnapEnd) []msg.Directive {
	if r.snap == nil {
		return nil
	}
	if r.snap.received < s.Batches {
		end := s
		r.snap.end = &end
		return nil
	}
	if r.active && int(s.Order) <= r.lastSlot {
		// A stale transfer — e.g. the answer to a catch-up request this
		// replica has since outrun through live deliveries — must not
		// roll an active replica back: every slot it covers is already
		// applied locally.
		r.snap = nil
		return nil
	}
	dumps := make([]sqldb.TableDump, len(r.snap.schemas))
	for i, sc := range r.snap.schemas {
		dumps[i] = sqldb.TableDump{Schema: sc, Rows: r.snap.rows[sc.Name]}
	}
	if err := r.exec.DB.Restore(dumps); err != nil {
		r.snap = nil
		return nil
	}
	r.snap = nil
	// Adopt the sender's dedup horizon along with its state: retries of
	// transactions already reflected in the transferred rows must be
	// deduplicated here exactly as the established replicas do.
	r.exec.InstallSnapshot(s.Executed)
	for c, seq := range s.LastSeq {
		r.exec.SetLastSeq(c, seq)
	}
	r.exec.AdoptRecent(s.Recent)
	if r.view != nil && (len(s.Epochs) > 0 || len(s.Joined) > 0) {
		r.view.Adopt(s.Epochs, s.Joined)
		r.refreshPeers(r.view.Current())
	}
	if r.lease != nil && len(s.Recent) > 0 {
		// The transfer may cover writes whose acks were suppressed
		// everywhere (no valid holder while they applied); re-emit the
		// adopted results at the next valid grant.
		r.ackGap = true
	}
	r.active = true
	coveredSlot := int(s.Order)
	var outs []msg.Directive
	for _, d := range r.buffer {
		if d.Slot <= coveredSlot {
			continue
		}
		outs = append(outs, r.applyBatch(d)...)
	}
	r.buffer = nil
	if r.stable != nil {
		// A full transfer supersedes the local journal: advance the
		// frontier to the covered slot, persist the transferred state as
		// the new baseline, and drain any out-of-order deliveries that
		// were parked while the transfer ran.
		if coveredSlot > r.lastSlot {
			r.lastSlot = coveredSlot
		}
		if err := r.saveSMRSnapshot(); err != nil {
			panic(fmt.Sprintf("core: smr baseline after transfer: %v", err))
		}
		for slot := range r.pending {
			if slot <= r.lastSlot {
				delete(r.pending, slot)
			}
		}
		outs = append(outs, r.drainPending()...)
	}
	return outs
}

// ------------------------------------------------------------- payloads --

// gobBasics registers the basic types that travel inside TxRequest.Args
// (interface-typed fields need explicit registration).
var gobBasics = sync.OnceFunc(func() {
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(int(0))
	gob.Register(true)
})

// EncodeTx serializes a transaction request for a broadcast payload.
func EncodeTx(req TxRequest) ([]byte, error) {
	gobBasics()
	var buf bytes.Buffer
	buf.WriteString("tx|")
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return nil, fmt.Errorf("core: encode tx: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeTx reverses EncodeTx.
func DecodeTx(b []byte) (TxRequest, error) {
	gobBasics()
	if len(b) < 3 || string(b[:3]) != "tx|" {
		return TxRequest{}, errStray
	}
	var req TxRequest
	if err := gob.NewDecoder(bytes.NewReader(b[3:])).Decode(&req); err != nil {
		return TxRequest{}, fmt.Errorf("core: decode tx: %w", err)
	}
	return req, nil
}

// EncodeSMRAdd serializes a reconfiguration request.
func EncodeSMRAdd(a SMRAddReplica) []byte {
	return []byte(fmt.Sprintf("add|%s|%s|%s", a.New, a.Remove, a.Proposer))
}

// DecodeSMRAdd recognizes a reconfiguration payload.
func DecodeSMRAdd(b []byte) (SMRAddReplica, bool) {
	parts := splitBytes(b, '|')
	if len(parts) != 4 || parts[0] != "add" {
		return SMRAddReplica{}, false
	}
	return SMRAddReplica{
		New: msg.Loc(parts[1]), Remove: msg.Loc(parts[2]), Proposer: msg.Loc(parts[3]),
	}, true
}
