package core

import (
	"errors"
	"testing"

	"shadowdb/internal/sqldb"
)

func setupBank10(db *sqldb.DB) error { return BankSetup(db, 10) }

// buildHistory runs a few transactions through an executor and returns
// the answered results.
func buildHistory(t *testing.T) (*Executor, []TxResult) {
	t.Helper()
	e := bankExec(t, 10)
	var answered []TxResult
	reqs := []TxRequest{
		depositReq("a", 1, 0, 5),
		depositReq("b", 1, 1, 7),
		depositReq("a", 2, 0, 3),
		{Client: "c", Seq: 1, Type: "balance", Args: []any{0}},
	}
	for i, req := range reqs {
		res, err := e.Apply(int64(i+1), req)
		if err != nil {
			t.Fatal(err)
		}
		answered = append(answered, res)
	}
	return e, answered
}

func TestCheckSerializablePasses(t *testing.T) {
	e, answered := buildHistory(t)
	if err := CheckSerializable(BankRegistry(), setupBank10, e, answered); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSerializableCatchesStateTampering(t *testing.T) {
	e, answered := buildHistory(t)
	// Tamper with the replica's state outside the log.
	if _, err := e.DB.Exec("UPDATE accounts SET balance = 0 WHERE id = 5"); err != nil {
		t.Fatal(err)
	}
	err := CheckSerializable(BankRegistry(), setupBank10, e, answered)
	if !errors.Is(err, ErrSerializability) {
		t.Errorf("err = %v, want ErrSerializability", err)
	}
}

func TestCheckSerializableCatchesForgedResult(t *testing.T) {
	e, answered := buildHistory(t)
	forged := answered[3]
	forged.Rows = [][]sqldb.Value{{int64(999999)}}
	err := CheckSerializable(BankRegistry(), setupBank10, e, []TxResult{forged})
	if !errors.Is(err, ErrSerializability) {
		t.Errorf("err = %v, want ErrSerializability", err)
	}
}

func TestCheckSerializableCatchesUnloggedAnswer(t *testing.T) {
	e, _ := buildHistory(t)
	ghost := TxResult{Client: "ghost", Seq: 1}
	err := CheckSerializable(BankRegistry(), setupBank10, e, []TxResult{ghost})
	if !errors.Is(err, ErrDurability) {
		t.Errorf("err = %v, want ErrDurability", err)
	}
}

func TestCheckSerializableCatchesClientOrderViolation(t *testing.T) {
	e := bankExec(t, 10)
	if _, err := e.Apply(1, depositReq("a", 5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// Manually force a lower client sequence number later in the log.
	e.log = append(e.log, Repl{Order: 2, Req: depositReq("a", 3, 0, 1)})
	e.Executed = 2
	err := CheckSerializable(BankRegistry(), setupBank10, e, nil)
	if !errors.Is(err, ErrClientOrder) {
		t.Errorf("err = %v, want ErrClientOrder", err)
	}
}

func TestCheckDurability(t *testing.T) {
	e, answered := buildHistory(t)
	if err := CheckDurability(answered, e); err != nil {
		t.Fatal(err)
	}
	missing := []TxResult{{Client: "zz", Seq: 9}}
	if err := CheckDurability(missing, e); !errors.Is(err, ErrDurability) {
		t.Errorf("err = %v, want ErrDurability", err)
	}
}

func TestCheckStateAgreement(t *testing.T) {
	a := bankExec(t, 5).DB
	b := bankExec(t, 5).DB
	if err := CheckStateAgreement(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("UPDATE accounts SET balance = 1 WHERE id = 0"); err != nil {
		t.Fatal(err)
	}
	if err := CheckStateAgreement(a, b); !errors.Is(err, ErrStateAgreement) {
		t.Errorf("err = %v, want ErrStateAgreement", err)
	}
}
