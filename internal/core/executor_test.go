package core

import (
	"errors"
	"testing"

	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

func bankExec(t *testing.T, rows int) *Executor {
	t.Helper()
	db, err := sqldb.Open("h2:mem:x")
	if err != nil {
		t.Fatal(err)
	}
	if err := BankSetup(db, rows); err != nil {
		t.Fatal(err)
	}
	return NewExecutor(db, BankRegistry())
}

func depositReq(client msg.Loc, seq int64, id, amount int) TxRequest {
	return TxRequest{Client: client, Seq: seq, Type: "deposit", Args: []any{id, amount}}
}

func balanceOf(t *testing.T, db *sqldb.DB, id int) int64 {
	t.Helper()
	res, err := db.Exec("SELECT balance FROM accounts WHERE id = ?", id)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("balance query: %v %v", res, err)
	}
	return res.Rows[0][0].(int64)
}

func TestExecutorApplyAndDedup(t *testing.T) {
	e := bankExec(t, 5)
	req := depositReq("c1", 1, 3, 50)
	if _, dup := e.Duplicate(req); dup {
		t.Fatal("fresh request marked duplicate")
	}
	res, err := e.Apply(1, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted || res.Err != "" {
		t.Fatalf("result = %+v", res)
	}
	if got := balanceOf(t, e.DB, 3); got != 1050 {
		t.Errorf("balance = %d", got)
	}
	// The same request again is a duplicate with the cached result.
	cached, dup := e.Duplicate(req)
	if !dup {
		t.Fatal("retry not detected as duplicate")
	}
	if cached.Seq != 1 || cached.Client != "c1" {
		t.Errorf("cached = %+v", cached)
	}
	if got := balanceOf(t, e.DB, 3); got != 1050 {
		t.Errorf("duplicate changed balance to %d", got)
	}
}

func TestExecutorOrderEnforced(t *testing.T) {
	e := bankExec(t, 2)
	if _, err := e.Apply(5, depositReq("c", 1, 0, 1)); err == nil {
		t.Error("out-of-order apply accepted")
	}
}

func TestExecutorAbort(t *testing.T) {
	e := bankExec(t, 2)
	// Deposit to a nonexistent account aborts deterministically.
	res, err := e.Apply(1, depositReq("c", 1, 999, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Errorf("result = %+v, want abort", res)
	}
	if e.DB.InTx() {
		t.Error("abort left transaction open")
	}
	// Aborted transactions still count as executed (all replicas abort
	// identically).
	if e.Executed != 1 {
		t.Errorf("Executed = %d", e.Executed)
	}
}

func TestExecutorUnknownType(t *testing.T) {
	e := bankExec(t, 1)
	res, err := e.Apply(1, TxRequest{Client: "c", Seq: 1, Type: "nonsense"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == "" {
		t.Error("unknown type produced no error")
	}
}

func TestExecutorLogCache(t *testing.T) {
	e := bankExec(t, 10)
	e.CacheSize = 4
	for i := int64(1); i <= 10; i++ {
		if _, err := e.Apply(i, depositReq("c", i, int(i%10), 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Recent suffix available.
	txs, ok := e.LogFrom(7)
	if !ok || len(txs) != 3 || txs[0].Order != 8 {
		t.Errorf("LogFrom(7) = %v %v", txs, ok)
	}
	// Far past evicted.
	if _, ok := e.LogFrom(2); ok {
		t.Error("evicted log range reported available")
	}
	// Nothing missing.
	txs, ok = e.LogFrom(10)
	if !ok || len(txs) != 0 {
		t.Errorf("LogFrom(10) = %v %v", txs, ok)
	}
}

func TestExecutorInstallSnapshot(t *testing.T) {
	e := bankExec(t, 3)
	if _, err := e.Apply(1, depositReq("c", 1, 0, 5)); err != nil {
		t.Fatal(err)
	}
	e.InstallSnapshot(40)
	if e.Executed != 40 {
		t.Errorf("Executed = %d", e.Executed)
	}
	if _, ok := e.LogFrom(39); ok {
		t.Error("LogFrom(39) reported available after snapshot wiped the log")
	}
}

func TestExecutorResultRows(t *testing.T) {
	e := bankExec(t, 3)
	res, err := e.Apply(1, TxRequest{Client: "c", Seq: 1, Type: "balance", Args: []any{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1000) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestFullLog(t *testing.T) {
	e := bankExec(t, 3)
	for i := int64(1); i <= 5; i++ {
		if _, err := e.Apply(i, depositReq("c", i, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	log, err := e.FullLog()
	if err != nil || len(log) != 5 {
		t.Fatalf("FullLog = %v, %v", log, err)
	}
	e.CacheSize = 2
	e.appendLog(Repl{Order: 6})
	if _, err := e.FullLog(); !errors.Is(err, ErrIncompleteLog) {
		t.Errorf("truncated log: err = %v", err)
	}
}

func TestApplyBatchGroupCommit(t *testing.T) {
	// A batch applied as one group commit must land on exactly the state
	// and bookkeeping of one-by-one application: same balances, same
	// Executed count, same dedup answers, same per-request results.
	batch := []TxRequest{
		depositReq("c1", 1, 0, 10),
		depositReq("c2", 1, 1, 20),
		depositReq("c1", 2, 999, 5), // unknown account: deterministic abort
		depositReq("c3", 1, 0, 30),
		{Client: "c2", Seq: 2, Type: "nosuch"},
	}

	grouped := bankExec(t, 3)
	results := grouped.ApplyBatch(batch)

	oneByOne := bankExec(t, 3)
	var want []TxResult
	for _, req := range batch {
		res, err := oneByOne.Apply(oneByOne.Executed+1, req)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}

	if len(results) != len(want) {
		t.Fatalf("got %d results, want %d", len(results), len(want))
	}
	for i := range want {
		if results[i].Aborted != want[i].Aborted || (results[i].Err == "") != (want[i].Err == "") {
			t.Errorf("result %d = %+v, want %+v", i, results[i], want[i])
		}
	}
	if grouped.Executed != oneByOne.Executed {
		t.Errorf("Executed = %d, want %d", grouped.Executed, oneByOne.Executed)
	}
	for id := 0; id < 3; id++ {
		if g, w := balanceOf(t, grouped.DB, id), balanceOf(t, oneByOne.DB, id); g != w {
			t.Errorf("balance[%d] = %d, want %d", id, g, w)
		}
	}
	if grouped.DB.InTx() {
		t.Error("group commit left a transaction open")
	}
	// The aborted transaction must not have leaked partial effects, and
	// dedup must answer retries for every request of the batch.
	for _, req := range batch {
		if _, dup := grouped.Duplicate(req); !dup {
			t.Errorf("request %s/%d not in dedup table", req.Client, req.Seq)
		}
	}
	// Log cache covers the batch for backup catch-up.
	if log, ok := grouped.LogFrom(0); !ok || len(log) != len(batch) {
		t.Errorf("LogFrom(0) = %d entries, ok=%v", len(log), ok)
	}
}

func TestApplyBatchEmpty(t *testing.T) {
	e := bankExec(t, 1)
	if out := e.ApplyBatch(nil); len(out) != 0 {
		t.Errorf("ApplyBatch(nil) = %v", out)
	}
	if e.Executed != 0 || e.DB.InTx() {
		t.Errorf("empty batch changed state: executed=%d inTx=%v", e.Executed, e.DB.InTx())
	}
}
