package core

import (
	"errors"
	"fmt"

	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// The transaction substrate shared by both replication protocols: typed,
// deterministic procedures executed sequentially against the local
// database, with per-client deduplication.

// ErrAbort is returned by a procedure to request a deterministic abort.
// Because transactions are deterministic, every replica aborts the same
// transactions (footnote 4 of the paper).
var ErrAbort = errors.New("core: transaction aborted")

// Procedure is a transaction type: a deterministic function of the
// database state and the request arguments. It runs inside an implicit
// transaction; returning an error rolls back.
type Procedure func(db *sqldb.DB, args []any) (ProcResult, error)

// ProcResult is a procedure's result set.
type ProcResult struct {
	Cols []string
	Rows [][]sqldb.Value
}

// Registry maps transaction type names to procedures. All replicas of a
// group must share one registry (procedures are code, not data; they
// cannot travel in messages).
type Registry map[string]Procedure

// Executor owns a replica's database, its execution log cache, and the
// per-client deduplication table.
type Executor struct {
	DB  *sqldb.DB
	Reg Registry
	// Executed is the number of transactions applied (the election
	// criterion of the recovery protocol).
	Executed int64
	// CacheSize bounds the transaction log kept for backup catch-up
	// ("each replica only caches a limited number of executed
	// transactions"); 0 means 1024.
	CacheSize int
	log       []Repl
	logStart  int64 // order number of log[0]
	dedup     map[string]TxResult
	lastSeq   map[string]int64
	// Durability (durability.go): with st set, appendLog journals every
	// ordered transaction and compacts the journal into a database
	// snapshot every snapEvery transactions. replaying suppresses
	// journaling while Recover re-executes the journal.
	st        store.Stable
	snapEvery int
	sinceSnap int
	replaying bool
}

// NewExecutor creates an executor over a database.
func NewExecutor(db *sqldb.DB, reg Registry) *Executor {
	return &Executor{
		DB:      db,
		Reg:     reg,
		dedup:   make(map[string]TxResult),
		lastSeq: make(map[string]int64),
	}
}

func (e *Executor) cacheSize() int {
	if e.CacheSize <= 0 {
		return 1024
	}
	return e.CacheSize
}

// Duplicate returns the cached result when the request was already
// executed (exactly-once under client retry).
func (e *Executor) Duplicate(req TxRequest) (TxResult, bool) {
	if last, ok := e.lastSeq[string(req.Client)]; !ok || req.Seq > last {
		return TxResult{}, false
	}
	res, ok := e.dedup[req.Key()]
	if !ok {
		// Older than the last answered sequence number but not cached:
		// answer with an empty duplicate marker (the client has moved on).
		return TxResult{Client: req.Client, Seq: req.Seq}, true
	}
	return res, true
}

// Apply executes one ordered transaction and records it in the log cache
// and the deduplication table. order must be Executed+1.
func (e *Executor) Apply(order int64, req TxRequest) (TxResult, error) {
	if order != e.Executed+1 {
		return TxResult{}, fmt.Errorf("core: applying order %d, expected %d", order, e.Executed+1)
	}
	res := e.run(req)
	e.Executed = order
	e.appendLog(Repl{Order: order, Req: req})
	e.dedup[req.Key()] = res
	if req.Seq > e.lastSeq[string(req.Client)] {
		e.lastSeq[string(req.Client)] = req.Seq
	}
	return res, nil
}

// run executes the procedure inside a transaction.
func (e *Executor) run(req TxRequest) TxResult {
	return RunProc(e.DB, e.Reg, req)
}

// ApplyBatch executes a contiguous run of ordered transactions inside a
// single SQL-engine critical section: one BEGIN, a savepoint per
// transaction (a procedure failure rolls back to its savepoint only),
// one COMMIT — the group commit of a decided broadcast batch. Order
// numbers are assigned sequentially from Executed+1 and the log,
// deduplication, and result bookkeeping are identical to calling Apply
// once per request, so primaries applying one-by-one and backups
// applying a whole batch converge on the same state.
func (e *Executor) ApplyBatch(reqs []TxRequest) []TxResult {
	out := make([]TxResult, 0, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if _, err := e.DB.Exec("BEGIN"); err != nil {
		// A transaction is somehow already open; degrade to the
		// per-transaction path rather than nesting.
		for _, req := range reqs {
			res, applyErr := e.Apply(e.Executed+1, req)
			if applyErr != nil {
				res = TxResult{Client: req.Client, Seq: req.Seq, Err: applyErr.Error()}
			}
			out = append(out, res)
		}
		return out
	}
	for _, req := range reqs {
		out = append(out, e.applyInBatch(req))
	}
	if e.DB.InTx() {
		_, _ = e.DB.Exec("COMMIT")
	}
	return out
}

// applyInBatch executes one transaction of an open group-commit batch
// under its own savepoint and records the same bookkeeping as Apply.
func (e *Executor) applyInBatch(req TxRequest) TxResult {
	out := TxResult{Client: req.Client, Seq: req.Seq}
	if proc, ok := e.Reg[req.Type]; !ok {
		out.Err = fmt.Sprintf("unknown transaction type %q", req.Type)
	} else if mark, err := e.DB.Savepoint(); err != nil {
		out.Err = err.Error()
	} else if res, err := proc(e.DB, req.Args); err != nil {
		_ = e.DB.RollbackTo(mark)
		if errors.Is(err, ErrAbort) {
			out.Aborted = true
		} else {
			out.Err = err.Error()
		}
	} else {
		out.Cols, out.Rows = res.Cols, res.Rows
	}
	order := e.Executed + 1
	e.Executed = order
	e.appendLog(Repl{Order: order, Req: req})
	e.dedup[req.Key()] = out
	if req.Seq > e.lastSeq[string(req.Client)] {
		e.lastSeq[string(req.Client)] = req.Seq
	}
	return out
}

// RunProc executes one procedure inside a transaction against a database,
// without ordering or deduplication bookkeeping. The replication
// protocols use Executor.Apply; the baselines and standalone servers use
// RunProc directly.
func RunProc(db *sqldb.DB, reg Registry, req TxRequest) TxResult {
	out := TxResult{Client: req.Client, Seq: req.Seq}
	proc, ok := reg[req.Type]
	if !ok {
		out.Err = fmt.Sprintf("unknown transaction type %q", req.Type)
		return out
	}
	if _, err := db.Exec("BEGIN"); err != nil {
		out.Err = err.Error()
		return out
	}
	res, err := proc(db, req.Args)
	if err != nil {
		if db.InTx() {
			_, _ = db.Exec("ROLLBACK")
		}
		if errors.Is(err, ErrAbort) {
			out.Aborted = true
			return out
		}
		out.Err = err.Error()
		return out
	}
	if _, err := db.Exec("COMMIT"); err != nil {
		out.Err = err.Error()
		return out
	}
	out.Cols, out.Rows = res.Cols, res.Rows
	return out
}

func (e *Executor) appendLog(r Repl) {
	e.journal(r)
	if len(e.log) == 0 {
		e.logStart = r.Order
	}
	e.log = append(e.log, r)
	if len(e.log) > e.cacheSize() {
		drop := len(e.log) - e.cacheSize()
		e.log = append([]Repl(nil), e.log[drop:]...)
		e.logStart += int64(drop)
	}
}

// LogFrom returns the cached transactions with order numbers > after, or
// ok=false when the cache no longer reaches back that far (a snapshot is
// needed instead).
func (e *Executor) LogFrom(after int64) ([]Repl, bool) {
	if after >= e.Executed {
		return nil, true
	}
	if len(e.log) == 0 || after+1 < e.logStart {
		return nil, false
	}
	idx := int(after + 1 - e.logStart)
	out := make([]Repl, len(e.log)-idx)
	copy(out, e.log[idx:])
	return out, true
}

// InstallSnapshot resets the executor to a transferred state.
func (e *Executor) InstallSnapshot(order int64) {
	e.Executed = order
	e.log = nil
	e.logStart = 0
	// The dedup table conservatively clears; duplicate suppression for
	// older requests is re-established as clients resend with their
	// latest sequence numbers.
	e.dedup = make(map[string]TxResult)
	e.lastSeq = make(map[string]int64)
}
