package core

import (
	"errors"
	"fmt"
	"sort"

	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// The transaction substrate shared by both replication protocols: typed,
// deterministic procedures executed sequentially against the local
// database, with per-client deduplication.

// ErrAbort is returned by a procedure to request a deterministic abort.
// Because transactions are deterministic, every replica aborts the same
// transactions (footnote 4 of the paper).
var ErrAbort = errors.New("core: transaction aborted")

// Procedure is a transaction type: a deterministic function of the
// database state and the request arguments. It runs inside an implicit
// transaction; returning an error rolls back.
type Procedure func(db *sqldb.DB, args []any) (ProcResult, error)

// ProcResult is a procedure's result set.
type ProcResult struct {
	Cols []string
	Rows [][]sqldb.Value
}

// Registry maps transaction type names to procedures. All replicas of a
// group must share one registry (procedures are code, not data; they
// cannot travel in messages).
type Registry map[string]Procedure

// FastProc is an allocation-lean write procedure: a single-statement
// mutation (e.g. a point increment through sqldb.PointAddInt) with no
// result set. Because it cannot fail after mutating, the executor skips
// the per-transaction savepoint — aborted=true requests a deterministic
// abort before any mutation.
type FastProc func(db *sqldb.DB, args []any) (aborted bool, err error)

// FastRegistry maps transaction types to their fast variants. A type
// present here shadows its Registry entry on the batch apply path.
type FastRegistry map[string]FastProc

// dedupWindow is how many recent results are kept per client. Results
// older than the window answer retries with an empty duplicate marker,
// exactly as the map-based cache did for results it had evicted.
const dedupWindow = 8

// clientState is the per-client dedup record: the last answered
// sequence number and a ring of recent results keyed by seq%window.
// Replacing the (key-string -> result) map removes the two per-apply
// allocations (fmt.Sprintf key + map growth) from the steady state.
type clientState struct {
	lastSeq int64
	recent  [dedupWindow]TxResult
}

// Executor owns a replica's database, its execution log cache, and the
// per-client deduplication table.
type Executor struct {
	DB  *sqldb.DB
	Reg Registry
	// Fast, when set, provides allocation-lean variants of hot write
	// procedures (see FastProc).
	Fast FastRegistry
	// Executed is the number of transactions applied (the election
	// criterion of the recovery protocol).
	Executed int64
	// CacheSize bounds the transaction log kept for backup catch-up
	// ("each replica only caches a limited number of executed
	// transactions"); 0 means 1024.
	CacheSize int
	log       []Repl
	logStart  int64 // order number of log[0]
	cstates   map[string]*clientState
	// resBuf is the reusable ApplyBatch result buffer; callers consume
	// it before the next batch.
	resBuf []TxResult
	// Durability (durability.go): with st set, appendLog journals every
	// ordered transaction and compacts the journal into a database
	// snapshot every snapEvery transactions. replaying suppresses
	// journaling while Recover re-executes the journal.
	st        store.Stable
	snapEvery int
	sinceSnap int
	replaying bool
}

// NewExecutor creates an executor over a database.
func NewExecutor(db *sqldb.DB, reg Registry) *Executor {
	return &Executor{
		DB:      db,
		Reg:     reg,
		cstates: make(map[string]*clientState),
	}
}

func (e *Executor) cacheSize() int {
	if e.CacheSize <= 0 {
		return 1024
	}
	return e.CacheSize
}

// state returns the dedup record for a client, creating it on first
// contact (amortized: one allocation per client, ever).
func (e *Executor) state(client msg.Loc) *clientState {
	cs := e.cstates[string(client)]
	if cs == nil {
		cs = &clientState{}
		e.cstates[string(client)] = cs
	}
	return cs
}

// Duplicate returns the cached result when the request was already
// executed (exactly-once under client retry).
func (e *Executor) Duplicate(req TxRequest) (TxResult, bool) {
	cs := e.cstates[string(req.Client)]
	if cs == nil || req.Seq > cs.lastSeq {
		return TxResult{}, false
	}
	if r := &cs.recent[req.Seq%dedupWindow]; r.Seq == req.Seq && r.Client == req.Client {
		return *r, true
	}
	// Older than the last answered sequence number but no longer cached:
	// answer with an empty duplicate marker (the client has moved on).
	return TxResult{Client: req.Client, Seq: req.Seq}, true
}

// record stores a result in the client's dedup ring and advances its
// horizon.
func (e *Executor) record(req TxRequest, res TxResult) {
	cs := e.state(req.Client)
	cs.recent[req.Seq%dedupWindow] = res
	if req.Seq > cs.lastSeq {
		cs.lastSeq = req.Seq
	}
}

// RecentResults returns the newest cached result of every client,
// ordered by client name so callers that re-emit them stay
// deterministic. Clients known only through a transferred dedup
// horizon (SetLastSeq) have no cached result and are skipped.
func (e *Executor) RecentResults() []TxResult {
	var out []TxResult
	for _, cs := range e.cstates {
		res := &cs.recent[cs.lastSeq%dedupWindow]
		if res.Seq == cs.lastSeq && res.Client != "" {
			out = append(out, *res)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// AdoptRecent seeds the dedup ring with transferred results (the
// counterpart of RecentResults on the receiving side of a snapshot or
// state transfer). Without them a restarted lease holder could re-ack
// only what it re-executed locally; with them it can answer for writes
// that reached it inside a state transfer.
func (e *Executor) AdoptRecent(results []TxResult) {
	for _, res := range results {
		cs := e.state(res.Client)
		cs.recent[res.Seq%dedupWindow] = res
		if res.Seq > cs.lastSeq {
			cs.lastSeq = res.Seq
		}
	}
}

// LastSeqs returns a copy of the per-client dedup horizon (for
// snapshots and state transfers).
func (e *Executor) LastSeqs() map[string]int64 {
	out := make(map[string]int64, len(e.cstates))
	for c, cs := range e.cstates {
		out[c] = cs.lastSeq
	}
	return out
}

// SetLastSeq adopts a transferred dedup horizon entry: retries at or
// below seq are answered with a duplicate marker rather than
// re-executed.
func (e *Executor) SetLastSeq(client string, seq int64) {
	cs := e.state(msg.Loc(client))
	if seq > cs.lastSeq {
		cs.lastSeq = seq
	}
}

// Apply executes one ordered transaction and records it in the log cache
// and the deduplication table. order must be Executed+1.
func (e *Executor) Apply(order int64, req TxRequest) (TxResult, error) {
	if order != e.Executed+1 {
		return TxResult{}, fmt.Errorf("core: applying order %d, expected %d", order, e.Executed+1)
	}
	res := e.run(req)
	e.Executed = order
	e.appendLog(Repl{Order: order, Req: req})
	e.record(req, res)
	return res, nil
}

// run executes the procedure inside a transaction.
func (e *Executor) run(req TxRequest) TxResult {
	return RunProc(e.DB, e.Reg, req)
}

// ApplyBatch executes a contiguous run of ordered transactions inside a
// single SQL-engine critical section: one BEGIN, a savepoint per
// transaction (a procedure failure rolls back to its savepoint only),
// one COMMIT — the group commit of a decided broadcast batch. Order
// numbers are assigned sequentially from Executed+1 and the log,
// deduplication, and result bookkeeping are identical to calling Apply
// once per request, so primaries applying one-by-one and backups
// applying a whole batch converge on the same state. The returned
// slice is reused by the next call; callers consume it immediately.
func (e *Executor) ApplyBatch(reqs []TxRequest) []TxResult {
	out := e.resBuf[:0]
	if len(reqs) == 0 {
		return out
	}
	if _, err := e.DB.Exec("BEGIN"); err != nil {
		// A transaction is somehow already open; degrade to the
		// per-transaction path rather than nesting.
		for _, req := range reqs {
			res, applyErr := e.Apply(e.Executed+1, req)
			if applyErr != nil {
				res = TxResult{Client: req.Client, Seq: req.Seq, Err: applyErr.Error()}
			}
			out = append(out, res)
		}
		e.resBuf = out
		return out
	}
	for _, req := range reqs {
		out = append(out, e.applyInBatch(req))
	}
	if e.DB.InTx() {
		_, _ = e.DB.Exec("COMMIT")
	}
	e.resBuf = out
	return out
}

// applyInBatch executes one transaction of an open group-commit batch
// under its own savepoint and records the same bookkeeping as Apply.
// Fast procedures skip the savepoint: a single-statement mutation
// cannot fail after mutating, so there is nothing to roll back to.
func (e *Executor) applyInBatch(req TxRequest) TxResult {
	out := TxResult{Client: req.Client, Seq: req.Seq}
	if fp, ok := e.Fast[req.Type]; ok {
		if aborted, err := fp(e.DB, req.Args); err != nil {
			out.Err = err.Error()
		} else if aborted {
			out.Aborted = true
		}
	} else if proc, ok := e.Reg[req.Type]; !ok {
		out.Err = fmt.Sprintf("unknown transaction type %q", req.Type)
	} else if mark, err := e.DB.Savepoint(); err != nil {
		out.Err = err.Error()
	} else if res, err := proc(e.DB, req.Args); err != nil {
		_ = e.DB.RollbackTo(mark)
		if errors.Is(err, ErrAbort) {
			out.Aborted = true
		} else {
			out.Err = err.Error()
		}
	} else {
		out.Cols, out.Rows = res.Cols, res.Rows
	}
	order := e.Executed + 1
	e.Executed = order
	e.appendLog(Repl{Order: order, Req: req})
	e.record(req, out)
	return out
}

// RunProc executes one procedure inside a transaction against a database,
// without ordering or deduplication bookkeeping. The replication
// protocols use Executor.Apply; the baselines and standalone servers use
// RunProc directly.
func RunProc(db *sqldb.DB, reg Registry, req TxRequest) TxResult {
	out := TxResult{Client: req.Client, Seq: req.Seq}
	proc, ok := reg[req.Type]
	if !ok {
		out.Err = fmt.Sprintf("unknown transaction type %q", req.Type)
		return out
	}
	if _, err := db.Exec("BEGIN"); err != nil {
		out.Err = err.Error()
		return out
	}
	res, err := proc(db, req.Args)
	if err != nil {
		if db.InTx() {
			_, _ = db.Exec("ROLLBACK")
		}
		if errors.Is(err, ErrAbort) {
			out.Aborted = true
			return out
		}
		out.Err = err.Error()
		return out
	}
	if _, err := db.Exec("COMMIT"); err != nil {
		out.Err = err.Error()
		return out
	}
	out.Cols, out.Rows = res.Cols, res.Rows
	return out
}

func (e *Executor) appendLog(r Repl) {
	e.journal(r)
	if len(e.log) == 0 {
		e.logStart = r.Order
	}
	e.log = append(e.log, r)
	if len(e.log) > e.cacheSize() {
		// Shift in place instead of reallocating: once the cache is full
		// this runs on every append, and the old copy-to-fresh-slice made
		// it a full-length allocation per transaction.
		drop := len(e.log) - e.cacheSize()
		n := copy(e.log, e.log[drop:])
		for i := n; i < len(e.log); i++ {
			e.log[i] = Repl{} // release references held past the cache
		}
		e.log = e.log[:n]
		e.logStart += int64(drop)
	}
}

// LogFrom returns the cached transactions with order numbers > after, or
// ok=false when the cache no longer reaches back that far (a snapshot is
// needed instead).
func (e *Executor) LogFrom(after int64) ([]Repl, bool) {
	if after >= e.Executed {
		return nil, true
	}
	if len(e.log) == 0 || after+1 < e.logStart {
		return nil, false
	}
	idx := int(after + 1 - e.logStart)
	out := make([]Repl, len(e.log)-idx)
	copy(out, e.log[idx:])
	return out, true
}

// InstallSnapshot resets the executor to a transferred state.
func (e *Executor) InstallSnapshot(order int64) {
	e.Executed = order
	e.log = nil
	e.logStart = 0
	// The dedup table conservatively clears; duplicate suppression for
	// older requests is re-established as clients resend with their
	// latest sequence numbers.
	e.cstates = make(map[string]*clientState)
}
