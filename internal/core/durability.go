package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// Executor durability. With a stable store attached, the executor
// journals every ordered transaction (the same Repl records it forwards
// to backups) and periodically compacts the journal into a full
// database snapshot. A restarted replica calls Recover to rebuild its
// state from the snapshot plus deterministic re-execution of the
// journal tail; the replication protocol then only has to fetch the
// transactions ordered during the downtime over the network.
//
// The write-ahead contract: appendLog (and therefore the journal write)
// runs inside Apply/applyInBatch, before the caller gets the TxResult
// it would reply with — a transaction is durable before any message
// reveals it executed.

// execRecord journals one ordered transaction.
type execRecord struct {
	Order int64
	Req   TxRequest
}

// execSnapshot is the compacted journal: the full database, the
// execution frontier, and the per-client dedup horizon (results are not
// kept; Duplicate answers pre-snapshot retries with an empty marker).
type execSnapshot struct {
	Dumps    []sqldb.TableDump
	Executed int64
	LastSeq  map[string]int64
}

// DefaultSnapEvery is the default journal-compaction interval, in
// transactions.
const DefaultSnapEvery = 64

// SetStable attaches a stable store. snapEvery <= 0 selects
// DefaultSnapEvery. Call before traffic; existing log entries are not
// retroactively journaled.
func (e *Executor) SetStable(st store.Stable, snapEvery int) {
	if snapEvery <= 0 {
		snapEvery = DefaultSnapEvery
	}
	e.st, e.snapEvery = st, snapEvery
}

// journal appends one ordered transaction write-ahead of the reply. A
// storage failure panics: an executor that cannot persist must not
// answer.
func (e *Executor) journal(r Repl) {
	if e.st == nil || e.replaying {
		return
	}
	if err := e.st.Append(gobEnc(execRecord{Order: r.Order, Req: r.Req})); err != nil {
		panic(fmt.Sprintf("core: executor journal: %v", err))
	}
	e.sinceSnap++
	if e.sinceSnap >= e.snapEvery {
		if err := e.Compact(); err != nil {
			panic(fmt.Sprintf("core: executor snapshot: %v", err))
		}
	}
}

// Compact saves a database snapshot to the stable store, truncating the
// journal behind it. Deployments call it once after installing the
// initial schema and population — rows that never travel through the
// journal are only recoverable from a snapshot.
func (e *Executor) Compact() error {
	if e.st == nil {
		return nil
	}
	snap := execSnapshot{
		Dumps:    e.DB.Snapshot(),
		Executed: e.Executed,
		LastSeq:  e.LastSeqs(),
	}
	if err := e.st.SaveSnapshot(gobEnc(snap)); err != nil {
		return err
	}
	e.sinceSnap = 0
	return nil
}

// Recover rebuilds the executor from its stable store: restore the
// snapshot, then deterministically re-execute the journal tail. It
// reports whether any durable state was found (false for a fresh
// store). The caller owns the network delta: after Recover, Executed is
// the local frontier and the protocol's usual catch-up
// (CatchupReq{Since: Executed} for PBR, the SMR slot catch-up) fetches
// what was ordered during the downtime.
func (e *Executor) Recover() (bool, error) {
	if e.st == nil {
		return false, nil
	}
	restored := false
	if b, ok, err := e.st.Snapshot(); err != nil {
		return false, err
	} else if ok {
		var snap execSnapshot
		if gobDec(b, &snap) == nil {
			if err := e.DB.Restore(snap.Dumps); err != nil {
				return false, fmt.Errorf("core: restore snapshot: %w", err)
			}
			e.InstallSnapshot(snap.Executed)
			for c, s := range snap.LastSeq {
				e.SetLastSeq(c, s)
			}
			restored = true
		}
	}
	e.replaying = true
	defer func() { e.replaying = false }()
	err := e.st.Replay(func(rec []byte) error {
		var r execRecord
		if gobDec(rec, &r) != nil {
			return nil // skip an undecodable record, keep the rest
		}
		if r.Order != e.Executed+1 {
			return nil // pre-snapshot straggler or duplicate
		}
		if _, err := e.Apply(r.Order, r.Req); err != nil {
			return err
		}
		restored = true
		return nil
	})
	return restored, err
}

// NewDurablePBRReplica creates a PBR replica whose executor journals to
// st, recovering any durable state first. It reports whether the
// replica came back from an existing store (true = a restart, not a
// fresh spare). The database must already hold the initial schema and
// population when the store is fresh: the baseline snapshot written
// here is the only place those rows are persisted.
func NewDurablePBRReplica(slf msg.Loc, db *sqldb.DB, reg Registry, dep PBRDeployment, st store.Stable, snapEvery int) (*PBRReplica, bool, error) {
	r := NewPBRReplica(slf, db, reg, dep)
	r.exec.SetStable(st, snapEvery)
	restored, err := r.exec.Recover()
	if err != nil {
		return nil, false, err
	}
	if !restored {
		if err := r.exec.Compact(); err != nil {
			return nil, false, err
		}
	}
	return r, restored, nil
}

// gobEnc encodes a durability record; encode failures are programming
// errors (the types are our own) and panic.
func gobEnc(v any) []byte {
	gobBasics()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("core: encode durability record: %v", err))
	}
	return buf.Bytes()
}

func gobDec(b []byte, v any) error {
	gobBasics()
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
