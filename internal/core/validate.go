package core

import (
	"errors"
	"fmt"
	"reflect"

	"shadowdb/internal/sqldb"
)

// Validators for the correctness properties of Section III-A:
//
//   - Durability: once a client receives a transaction's answer, the
//     execution of this transaction is permanently reflected in the state
//     of the surviving replicas.
//   - State-agreement: in each configuration, replicas that process
//     transactions start in the same state.
//   - Strict serializability: the committed history is equivalent to the
//     sequential execution of the replica log, and the log respects each
//     client's submission order.

// Validation errors.
var (
	ErrDurability      = errors.New("core: durability violated")
	ErrStateAgreement  = errors.New("core: state agreement violated")
	ErrSerializability = errors.New("core: serializability violated")
	ErrClientOrder     = errors.New("core: client submission order violated")
	ErrIncompleteLog   = errors.New("core: replica log cache incomplete, cannot replay")
)

// Seen reports whether the executor has executed (and remembered) the
// request key — used by the durability validator.
func (e *Executor) Seen(req TxRequest) bool {
	cs := e.cstates[string(req.Client)]
	return cs != nil && req.Seq <= cs.lastSeq
}

// FullLog returns the whole cached log when it is complete (reaches back
// to order 1).
func (e *Executor) FullLog() ([]Repl, error) {
	if e.Executed == 0 {
		return nil, nil
	}
	if len(e.log) == 0 || e.logStart != 1 {
		return nil, ErrIncompleteLog
	}
	return append([]Repl(nil), e.log...), nil
}

// CheckDurability verifies every answered request is reflected at every
// surviving replica's executor.
func CheckDurability(answered []TxResult, survivors ...*Executor) error {
	for _, res := range answered {
		req := TxRequest{Client: res.Client, Seq: res.Seq}
		for i, s := range survivors {
			if !s.Seen(req) {
				return fmt.Errorf("%w: %s/%d missing at survivor %d", ErrDurability, res.Client, res.Seq, i)
			}
		}
	}
	return nil
}

// CheckStateAgreement verifies the replicas hold identical databases.
func CheckStateAgreement(dbs ...*sqldb.DB) error {
	for i := 1; i < len(dbs); i++ {
		if !sqldb.Equal(dbs[0], dbs[i]) {
			return fmt.Errorf("%w: replica 0 and %d differ", ErrStateAgreement, i)
		}
	}
	return nil
}

// CheckSerializable replays a replica's committed log on a fresh database
// and verifies (1) the final state matches the replica, (2) each client's
// transactions appear in submission order, and (3) every answered result
// matches the replayed result. setup installs the initial schema and
// population (the state replicas started from).
func CheckSerializable(reg Registry, setup func(*sqldb.DB) error, replica *Executor, answered []TxResult) error {
	log, err := replica.FullLog()
	if err != nil {
		return err
	}
	fresh := sqldb.New(replica.DB.Engine())
	if setup != nil {
		if err := setup(fresh); err != nil {
			return fmt.Errorf("setup replay database: %w", err)
		}
	}
	replay := NewExecutor(fresh, reg)
	lastSeq := make(map[string]int64)
	results := make(map[string]TxResult)
	for i, entry := range log {
		if entry.Order != int64(i+1) {
			return fmt.Errorf("%w: log gap at %d", ErrSerializability, i)
		}
		cli := string(entry.Req.Client)
		if entry.Req.Seq <= lastSeq[cli] {
			return fmt.Errorf("%w: client %s seq %d after %d", ErrClientOrder, cli, entry.Req.Seq, lastSeq[cli])
		}
		lastSeq[cli] = entry.Req.Seq
		res, err := replay.Apply(entry.Order, entry.Req)
		if err != nil {
			return fmt.Errorf("replay order %d: %w", entry.Order, err)
		}
		results[entry.Req.Key()] = res
	}
	if !sqldb.Equal(fresh, replica.DB) {
		return fmt.Errorf("%w: replayed state differs from replica state", ErrSerializability)
	}
	for _, res := range answered {
		key := TxRequest{Client: res.Client, Seq: res.Seq}.Key()
		want, ok := results[key]
		if !ok {
			return fmt.Errorf("%w: answered %s not in log", ErrDurability, key)
		}
		if res.Aborted != want.Aborted || res.Err != want.Err || !reflect.DeepEqual(res.Rows, want.Rows) {
			return fmt.Errorf("%w: result of %s differs from replay", ErrSerializability, key)
		}
	}
	return nil
}
