package core

import (
	"shadowdb/internal/flow"
	"shadowdb/internal/msg"
)

// FlowClass is the shed classifier for the ordered payloads this
// package owns (see flow.Classifier): client transactions are
// ClassWrite; lease renewals, membership commands, and recovery
// markers are ClassControl — a saturated sequencer must keep ordering
// the control plane or overload turns into unavailability. Reads never
// appear here: lease and follower reads are served locally at replicas
// and bypass the order entirely, which is how they end up "shed last"
// — they are never queued at all.
func FlowClass(payload []byte) flow.Class {
	if len(payload) >= 4 {
		switch string(payload[:4]) {
		case "lse|", "mbr|", "add|":
			return flow.ClassControl
		}
	}
	return flow.ClassWrite
}

func init() {
	// Envelope deadline stamping for direct transaction sends (the PBR
	// client path, which does not wrap requests in a Bcast).
	msg.RegisterDeadline(func(m msg.Msg) (int64, bool) {
		if r, ok := m.Body.(TxRequest); ok {
			return r.Deadline, true
		}
		return 0, false
	})
}
