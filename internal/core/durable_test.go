package core

import (
	"testing"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

func bankDB(t *testing.T, name string, rows int) *sqldb.DB {
	t.Helper()
	db, err := sqldb.Open("h2:mem:" + name)
	if err != nil {
		t.Fatal(err)
	}
	if rows > 0 {
		if err := BankSetup(db, rows); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func emptyDB(t *testing.T, name string) *sqldb.DB { return bankDB(t, name, 0) }

func mustOpen(t *testing.T, prov store.Provider, name string) store.Stable {
	t.Helper()
	st, err := prov.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func durDeposit(seq int64) TxRequest {
	return TxRequest{Client: "c0", Seq: seq, Type: "deposit", Args: []any{1, 5}}
}

func depositDeliver(t *testing.T, slot int) broadcast.Deliver {
	t.Helper()
	pay, err := EncodeTx(durDeposit(int64(slot + 1)))
	if err != nil {
		t.Fatal(err)
	}
	return broadcast.Deliver{Slot: slot, Msgs: []broadcast.Bcast{{From: "c0", Seq: int64(slot + 1), Payload: pay}}}
}

func stepDeliver(r *SMRReplica, d broadcast.Deliver) []msg.Directive {
	_, outs := r.Step(msg.M(broadcast.HdrDeliver, d))
	return outs
}

// An executor rebuilt over its store — fresh empty database — must come
// back with the same Executed frontier and the same table contents,
// including the initial population that only the baseline snapshot
// holds.
func TestExecutorRecover(t *testing.T) {
	for name, prov := range map[string]store.Provider{
		"mem": store.NewMem(),
		"dir": mustDirProv(t),
	} {
		t.Run(name, func(t *testing.T) {
			db := bankDB(t, "exec-"+name, 10)
			exec := NewExecutor(db, BankRegistry())
			exec.SetStable(mustOpen(t, prov, "r1"), 4)
			if err := exec.Compact(); err != nil { // baseline: the setup rows
				t.Fatal(err)
			}
			for i := int64(1); i <= 10; i++ {
				if _, err := exec.Apply(i, durDeposit(i)); err != nil {
					t.Fatal(err)
				}
			}

			db2 := emptyDB(t, "exec2-"+name)
			exec2 := NewExecutor(db2, BankRegistry())
			exec2.SetStable(mustOpen(t, prov, "r1"), 4)
			restored, err := exec2.Recover()
			if err != nil || !restored {
				t.Fatalf("Recover = %v, %v; want restored", restored, err)
			}
			if exec2.Executed != 10 {
				t.Errorf("recovered Executed = %d, want 10", exec2.Executed)
			}
			if !sqldb.Equal(db, db2) {
				t.Error("recovered database differs from the original")
			}
			// The dedup horizon survived: a pre-crash request is a duplicate.
			if _, dup := exec2.Duplicate(durDeposit(3)); !dup {
				t.Error("pre-crash request not recognized as duplicate after recovery")
			}
		})
	}
}

func mustDirProv(t *testing.T) *store.Dir {
	t.Helper()
	d, err := store.NewDir(t.TempDir(), store.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// A durable SMR replica rebuilt over its store recovers the baseline
// population plus every journaled slot without any network traffic.
func TestDurableSMRReplicaRecoversLocally(t *testing.T) {
	prov := store.NewMem()
	db := bankDB(t, "smr-r1", 10)
	r1, err := NewDurableSMRReplica("r1", db, BankRegistry(), mustOpen(t, prov, "r1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Recovered() {
		t.Fatal("fresh store reported as recovered")
	}
	for s := 0; s < 10; s++ {
		if outs := stepDeliver(r1, depositDeliver(t, s)); len(outs) == 0 {
			t.Fatalf("slot %d produced no reply", s)
		}
	}

	db2 := emptyDB(t, "smr-r1b")
	r1b, err := NewDurableSMRReplica("r1", db2, BankRegistry(), mustOpen(t, prov, "r1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r1b.Recovered() {
		t.Fatal("restart over a populated store not recovered")
	}
	if r1b.LastSlot() != 9 {
		t.Errorf("recovered LastSlot = %d, want 9", r1b.LastSlot())
	}
	if !sqldb.Equal(db, db2) {
		t.Error("recovered database differs from the original")
	}
}

// Local recovery across a compaction boundary: enough slots to trigger
// a snapshot, plus a journal tail.
func TestDurableSMRReplicaRecoversAcrossCompaction(t *testing.T) {
	prov := mustDirProv(t)
	db := bankDB(t, "smrc-r1", 10)
	r1, err := NewDurableSMRReplica("r1", db, BankRegistry(), mustOpen(t, prov, "r1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := smrSnapEvery + 7
	for s := 0; s < n; s++ {
		stepDeliver(r1, depositDeliver(t, s))
	}

	db2 := emptyDB(t, "smrc-r1b")
	r1b, err := NewDurableSMRReplica("r1", db2, BankRegistry(), mustOpen(t, prov, "r1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1b.LastSlot() != n-1 {
		t.Errorf("recovered LastSlot = %d, want %d", r1b.LastSlot(), n-1)
	}
	if !sqldb.Equal(db, db2) {
		t.Error("recovered database differs across compaction")
	}
}

// A restarted replica fetches only the delta over the network: the
// peer serves the missing slots from its journal, and the catch-up
// application is quiet (the live replicas already answered those
// clients).
func TestDurableSMRCatchupDelta(t *testing.T) {
	prov := store.NewMem()
	db1 := bankDB(t, "cd-r1", 10)
	r1, err := NewDurableSMRReplica("r1", db1, BankRegistry(), mustOpen(t, prov, "r1"), []msg.Loc{"r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	db2 := bankDB(t, "cd-r2", 10)
	r2, err := NewDurableSMRReplica("r2", db2, BankRegistry(), mustOpen(t, prov, "r2"), []msg.Loc{"r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	// r1 sees everything; r2 crashes after slot 2.
	for s := 0; s < 6; s++ {
		stepDeliver(r1, depositDeliver(t, s))
		if s <= 2 {
			stepDeliver(r2, depositDeliver(t, s))
		}
	}

	db2b := emptyDB(t, "cd-r2b")
	r2b, err := NewDurableSMRReplica("r2", db2b, BankRegistry(), mustOpen(t, prov, "r2"), []msg.Loc{"r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	if r2b.LastSlot() != 2 {
		t.Fatalf("local recovery frontier = %d, want 2", r2b.LastSlot())
	}
	// One immediate request per peer plus one delayed retry (the first
	// round can be lost to a stale connection on a live network).
	reqs := r2b.RecoveryDirectives()
	if len(reqs) != 2 || reqs[0].M.Hdr != HdrSMRCatchupReq || reqs[0].Delay != 0 {
		t.Fatalf("recovery directives = %v, want an immediate catch-up request plus a delayed retry", reqs)
	}
	if reqs[1].M.Hdr != HdrSMRCatchupReq || reqs[1].Delay == 0 {
		t.Fatalf("second directive = %v, want a delayed duplicate of the catch-up request", reqs[1])
	}
	_, reply := r1.Step(reqs[0].M)
	if len(reply) != 1 || reply[0].M.Hdr != HdrSMRCatchup {
		t.Fatalf("peer answered %v, want one SMRCatchup", reply)
	}
	cu := reply[0].M.Body.(SMRCatchup)
	if len(cu.Delivers) != 3 {
		t.Fatalf("delta carries %d slots, want 3 (slots 3..5)", len(cu.Delivers))
	}
	_, outs := r2b.Step(reply[0].M)
	for _, o := range outs {
		if o.M.Hdr == HdrTxResult {
			t.Error("catch-up application re-answered a client")
		}
	}
	if r2b.LastSlot() != 5 {
		t.Errorf("post-catch-up frontier = %d, want 5", r2b.LastSlot())
	}
	if !sqldb.Equal(db1, db2b) {
		t.Error("caught-up replica differs from the live one")
	}

	// A live delivery with a gap parks and re-requests; the delta fills
	// the hole and the parked slot drains.
	gap := stepDeliver(r2b, depositDeliver(t, 7))
	if len(gap) == 0 || gap[0].M.Hdr != HdrSMRCatchupReq {
		t.Fatalf("gap delivery produced %v, want a catch-up request", gap)
	}
	_, outs = r2b.Step(msg.M(HdrSMRCatchup, SMRCatchup{Delivers: []broadcast.Deliver{depositDeliver(t, 6)}}))
	if r2b.LastSlot() != 7 {
		t.Errorf("frontier after gap fill = %d, want 7 (parked slot drained)", r2b.LastSlot())
	}
	_ = outs
}

// A peer whose journal was compacted past the requested range falls
// back to a full state transfer, and the requester installs it.
func TestDurableSMRCatchupSnapshotFallback(t *testing.T) {
	prov := store.NewMem()
	db1 := bankDB(t, "fb-r1", 10)
	r1, err := NewDurableSMRReplica("r1", db1, BankRegistry(), mustOpen(t, prov, "r1"), []msg.Loc{"r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	n := smrSnapEvery + 3 // past a compaction: the journal no longer reaches slot 0
	for s := 0; s < n; s++ {
		stepDeliver(r1, depositDeliver(t, s))
	}
	_, reply := r1.Step(msg.M(HdrSMRCatchupReq, SMRCatchupReq{From: "r2", After: 1}))
	if len(reply) < 3 || reply[0].M.Hdr != HdrSnapBegin {
		t.Fatalf("compacted peer answered %v, want a state transfer", reply[0].M.Hdr)
	}

	db2 := bankDB(t, "fb-r2", 10)
	r2, err := NewDurableSMRReplica("r2", db2, BankRegistry(), mustOpen(t, prov, "r2"), []msg.Loc{"r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	stepDeliver(r2, depositDeliver(t, 0))
	stepDeliver(r2, depositDeliver(t, 1))
	for _, o := range reply {
		r2.Step(o.M)
	}
	if r2.LastSlot() != n-1 {
		t.Errorf("post-transfer frontier = %d, want %d", r2.LastSlot(), n-1)
	}
	if !sqldb.Equal(db1, db2) {
		t.Error("transferred state differs from the sender")
	}
	// The transfer re-baselined the store: a fresh incarnation recovers
	// the transferred state locally.
	db2b := emptyDB(t, "fb-r2b")
	r2b, err := NewDurableSMRReplica("r2", db2b, BankRegistry(), mustOpen(t, prov, "r2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2b.LastSlot() != n-1 || !sqldb.Equal(db1, db2b) {
		t.Error("state transfer was not persisted as the new baseline")
	}
}

// Satellite: the joining-replica snapshot path must survive message
// duplication — every transfer message delivered twice must not double
// rows or complete the assembly early.
func TestSMRJoiningSnapshotDuplicated(t *testing.T) {
	db1 := bankDB(t, "dup-r1", 120)
	r1 := NewSMRReplica("r1", db1, BankRegistry())
	for s := 0; s < 3; s++ {
		stepDeliver(r1, depositDeliver(t, s))
	}
	xfer := r1.pushSnapshot("r2")
	if len(xfer) < 3 {
		t.Fatalf("transfer has %d messages, want begin+batches+end", len(xfer))
	}

	db2 := emptyDB(t, "dup-r2")
	r2 := NewJoiningSMRReplica("r2", db2, BankRegistry())
	for _, o := range xfer {
		r2.Step(o.M)
		r2.Step(o.M) // duplicate every message
	}
	if !r2.Active() {
		t.Fatal("joining replica did not activate")
	}
	if !sqldb.Equal(db1, db2) {
		t.Error("duplicated transfer corrupted the joined state")
	}
}

// Satellite: a dropped batch followed by a full retransmission of the
// transfer must still complete with exactly one copy of every row.
func TestSMRJoiningSnapshotDroppedThenRetransmitted(t *testing.T) {
	db1 := bankDB(t, "drop-r1", 120)
	r1 := NewSMRReplica("r1", db1, BankRegistry())
	xfer := r1.pushSnapshot("r2")

	// Find a batch to drop (the second message is the first SnapBatch).
	dropIdx := -1
	for i, o := range xfer {
		if o.M.Hdr == HdrSnapBatch {
			dropIdx = i
			break
		}
	}
	if dropIdx < 0 {
		t.Fatal("transfer carries no batches; grow the table")
	}

	db2 := emptyDB(t, "drop-r2")
	r2 := NewJoiningSMRReplica("r2", db2, BankRegistry())
	for i, o := range xfer {
		if i == dropIdx {
			continue // the network ate this batch
		}
		r2.Step(o.M)
	}
	if r2.Active() {
		t.Fatal("assembly completed with a batch missing")
	}
	// The sender retransmits the missing batch; the SnapEnd already
	// arrived, so its arrival completes the assembly.
	r2.Step(xfer[dropIdx].M)
	if !r2.Active() {
		t.Fatal("retransmitted batch did not complete the assembly")
	}
	if !sqldb.Equal(db1, db2) {
		t.Error("retransmitted transfer corrupted the joined state")
	}
}

// A recovered PBR executor rejoins with its frontier intact, so the
// protocol-level catch-up only has to send the downtime delta.
func TestDurablePBRReplicaRecovers(t *testing.T) {
	prov := store.NewMem()
	dep := PBRDeployment{Pool: []msg.Loc{"p1", "p2"}, InitialMembers: 2}
	db := bankDB(t, "pbr-p2", 10)
	r, restored, err := NewDurablePBRReplica("p2", db, BankRegistry(), dep, mustOpen(t, prov, "p2"), 8)
	if err != nil || restored {
		t.Fatalf("fresh durable replica: restored=%v err=%v", restored, err)
	}
	for i := int64(1); i <= 20; i++ {
		if _, err := r.Executor().Apply(i, durDeposit(i)); err != nil {
			t.Fatal(err)
		}
	}

	db2 := emptyDB(t, "pbr-p2b")
	r2, restored, err := NewDurablePBRReplica("p2", db2, BankRegistry(), dep, mustOpen(t, prov, "p2"), 8)
	if err != nil || !restored {
		t.Fatalf("restart: restored=%v err=%v", restored, err)
	}
	if r2.Executor().Executed != 20 {
		t.Errorf("recovered Executed = %d, want 20", r2.Executor().Executed)
	}
	if !sqldb.Equal(db, db2) {
		t.Error("recovered PBR database differs")
	}
}
