package core

import (
	"fmt"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// Deployment helpers: wire broadcast service nodes, replicas and clients
// into one gpm.System for the reference runner, the verifier, and the
// examples. The simulator (package des) hosts the same pieces with its
// own adapters in package bench.

// HdrSubmit drives a client: the body names the transaction to run next.
const HdrSubmit = "cli.submit"

// SubmitBody is the workload injection for ClientProc.
type SubmitBody struct {
	Type string
	Args []any
}

// ClientProc wraps a Client state machine as a gpm process. Each
// HdrSubmit message starts one transaction; onResult (if non-nil) runs at
// completion.
func ClientProc(c *Client, onResult func(TxResult)) gpm.Process {
	var step gpm.StepFunc
	step = func(in msg.Msg) (gpm.Process, []msg.Directive) {
		if in.Hdr == HdrSubmit {
			b := in.Body.(SubmitBody)
			return step, c.Submit(b.Type, b.Args)
		}
		res, outs := c.Handle(in)
		if res != nil && onResult != nil {
			onResult(*res)
		}
		return step, outs
	}
	return step
}

// PBRSystem is a fully wired primary-backup deployment.
type PBRSystem struct {
	Dep      PBRDeployment
	Replicas map[msg.Loc]*PBRReplica
	Bcast    broadcast.Config
}

// NewPBRSystem builds the replicas (each with its own database from
// mkDB) and the broadcast service configuration. Replicas subscribe to
// the broadcast service for recovery proposals.
func NewPBRSystem(dep PBRDeployment, reg Registry, mkDB func(slf msg.Loc) *sqldb.DB) *PBRSystem {
	sys := &PBRSystem{Dep: dep, Replicas: make(map[msg.Loc]*PBRReplica, len(dep.Pool))}
	for _, l := range dep.Pool {
		sys.Replicas[l] = NewPBRReplica(l, mkDB(l), reg, dep)
	}
	sys.Bcast = broadcast.Config{
		Nodes:       dep.BcastNodes,
		Subscribers: append([]msg.Loc(nil), dep.Pool...),
	}
	return sys
}

// System assembles the gpm.System hosting broadcast nodes and replicas.
// Extra generators (clients) are consulted for unknown locations.
func (s *PBRSystem) System(extraLocs []msg.Loc, extra gpm.Generator) gpm.System {
	bgen := broadcast.Spec(s.Bcast).Generator()
	locs := append([]msg.Loc(nil), s.Dep.BcastNodes...)
	locs = append(locs, s.Dep.Pool...)
	locs = append(locs, extraLocs...)
	gen := func(slf msg.Loc) gpm.Process {
		if r, ok := s.Replicas[slf]; ok {
			return r
		}
		for _, b := range s.Dep.BcastNodes {
			if b == slf {
				return bgen(slf)
			}
		}
		if extra != nil {
			return extra(slf)
		}
		return gpm.Halt()
	}
	return gpm.System{Gen: gen, Locs: locs}
}

// StartDirectives returns the boot messages (failure detectors), in
// pool order: map iteration would arm same-instant timers in a
// different order each run, perturbing simulated schedules that must
// replay exactly (the chaos fingerprint check).
func (s *PBRSystem) StartDirectives() []msg.Directive {
	var outs []msg.Directive
	for _, l := range s.Dep.Pool {
		outs = append(outs, s.Replicas[l].Start()...)
	}
	return outs
}

// SMRSystem is a fully wired state-machine-replication deployment.
type SMRSystem struct {
	Nodes    []msg.Loc
	Replicas map[msg.Loc]*SMRReplica
	Bcast    broadcast.Config
}

// NewSMRSystem builds n replicas, each co-located with (and subscribed
// to) one broadcast service node, as in the paper's deployment.
func NewSMRSystem(bcastNodes []msg.Loc, replicaLocs []msg.Loc, reg Registry, mkDB func(slf msg.Loc) *sqldb.DB) *SMRSystem {
	if len(bcastNodes) != len(replicaLocs) {
		panic(fmt.Sprintf("core: %d broadcast nodes for %d replicas", len(bcastNodes), len(replicaLocs)))
	}
	sys := &SMRSystem{Nodes: bcastNodes, Replicas: make(map[msg.Loc]*SMRReplica, len(replicaLocs))}
	local := make(map[msg.Loc][]msg.Loc, len(bcastNodes))
	for i, b := range bcastNodes {
		local[b] = []msg.Loc{replicaLocs[i]}
		sys.Replicas[replicaLocs[i]] = NewSMRReplica(replicaLocs[i], mkDB(replicaLocs[i]), reg)
	}
	sys.Bcast = broadcast.Config{Nodes: bcastNodes, LocalSubscribers: local}
	return sys
}

// System assembles the gpm.System for the runner.
func (s *SMRSystem) System(extraLocs []msg.Loc, extra gpm.Generator) gpm.System {
	bgen := broadcast.Spec(s.Bcast).Generator()
	locs := append([]msg.Loc(nil), s.Nodes...)
	for l := range s.Replicas {
		locs = append(locs, l)
	}
	locs = append(locs, extraLocs...)
	gen := func(slf msg.Loc) gpm.Process {
		if r, ok := s.Replicas[slf]; ok {
			return r
		}
		for _, b := range s.Nodes {
			if b == slf {
				return bgen(slf)
			}
		}
		if extra != nil {
			return extra(slf)
		}
		return gpm.Halt()
	}
	return gpm.System{Gen: gen, Locs: locs}
}

// --------------------------------------------------------- bank fixture --

// The bank micro-benchmark schema of Section IV-B: accounts with an
// identifier, an owner, and a balance; 16-byte rows.

// BankSetup creates and populates the accounts table.
func BankSetup(db *sqldb.DB, rows int) error {
	if _, err := db.Exec("CREATE TABLE accounts (id INT PRIMARY KEY, owner VARCHAR(8), balance INT)"); err != nil {
		return fmt.Errorf("create accounts: %w", err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec("INSERT INTO accounts (id, owner, balance) VALUES (?, ?, ?)",
			i, fmt.Sprintf("o%06d", i), 1000); err != nil {
			return fmt.Errorf("populate accounts: %w", err)
		}
	}
	return nil
}

// BankRegistry returns the bank transaction types: "deposit" (the
// micro-benchmark's update transaction), "balance" (a read), and
// "transfer" (move funds between two accounts, aborting on insufficient
// funds — the transaction the sharded deployment splits across shards
// when the two accounts live apart).
func BankRegistry() Registry {
	return Registry{
		"transfer": func(db *sqldb.DB, args []any) (ProcResult, error) {
			if len(args) != 3 {
				return ProcResult{}, fmt.Errorf("transfer wants (from, to, amount)")
			}
			from, to, amt := args[0], args[1], args[2]
			// Guard the debit with the balance predicate so the whole
			// transfer is a deterministic abort on insufficient funds.
			res, err := db.Exec(
				"UPDATE accounts SET balance = balance - ? WHERE id = ? AND balance >= ?",
				amt, from, amt)
			if err != nil {
				return ProcResult{}, err
			}
			if res.Affected == 0 {
				return ProcResult{}, ErrAbort // unknown account or insufficient funds
			}
			res, err = db.Exec("UPDATE accounts SET balance = balance + ? WHERE id = ?", amt, to)
			if err != nil {
				return ProcResult{}, err
			}
			if res.Affected == 0 {
				return ProcResult{}, ErrAbort // unknown destination: roll back the debit
			}
			return ProcResult{}, nil
		},
		"deposit": func(db *sqldb.DB, args []any) (ProcResult, error) {
			if len(args) != 2 {
				return ProcResult{}, fmt.Errorf("deposit wants (id, amount)")
			}
			res, err := db.Exec("UPDATE accounts SET balance = balance + ? WHERE id = ?", args[1], args[0])
			if err != nil {
				return ProcResult{}, err
			}
			if res.Affected == 0 {
				return ProcResult{}, ErrAbort // unknown account: deterministic abort
			}
			return ProcResult{}, nil
		},
		"balance": func(db *sqldb.DB, args []any) (ProcResult, error) {
			if len(args) != 1 {
				return ProcResult{}, fmt.Errorf("balance wants (id)")
			}
			res, err := db.Exec("SELECT balance FROM accounts WHERE id = ?", args[0])
			if err != nil {
				return ProcResult{}, err
			}
			return ProcResult{Cols: res.Cols, Rows: res.Rows}, nil
		},
	}
}

// asInt64 widens a procedure argument the way the SQL layer does.
func asInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	}
	return 0, false
}

// BankReadRegistry returns the read-only procedures served on the
// local read path. "balance" answers through sqldb.PointGet into the
// reusable result, so a steady-state serve allocates nothing.
func BankReadRegistry() ReadRegistry {
	return ReadRegistry{
		"balance": func(db *sqldb.DB, args []any, res *ReadResult) error {
			if len(args) != 1 {
				return fmt.Errorf("balance wants (id)")
			}
			id, ok := asInt64(args[0])
			if !ok {
				return fmt.Errorf("balance wants an integer id")
			}
			v, ok := db.PointGet("accounts", id, "balance")
			if !ok {
				return fmt.Errorf("no account %d", id)
			}
			res.Vals = append(res.Vals, v)
			return nil
		},
	}
}

// BankFastRegistry returns the allocation-lean variants of the hot
// bank writes: "deposit" becomes a single in-place point increment
// (identical semantics — a missing account deterministically aborts
// before any mutation).
func BankFastRegistry() FastRegistry {
	return FastRegistry{
		"deposit": func(db *sqldb.DB, args []any) (bool, error) {
			if len(args) != 2 {
				return false, fmt.Errorf("deposit wants (id, amount)")
			}
			id, ok1 := asInt64(args[0])
			amt, ok2 := asInt64(args[1])
			if !ok1 || !ok2 {
				return false, fmt.Errorf("deposit wants integer (id, amount)")
			}
			ok, err := db.PointAddInt("accounts", id, "balance", amt)
			if err != nil {
				return false, err
			}
			return !ok, nil // unknown account: deterministic abort
		},
	}
}
