package core

import (
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/msg"
)

func TestClientSubmitPBR(t *testing.T) {
	cli := &Client{Slf: "c", Mode: ModePBR, Replicas: []msg.Loc{"r1", "r2"}, Retry: time.Second}
	outs := cli.Submit("deposit", []any{1, 2})
	if !cli.Busy() {
		t.Fatal("client not busy after Submit")
	}
	var toPrimary, retryTimer bool
	for _, o := range outs {
		switch {
		case o.Dest == "r1" && o.M.Hdr == HdrTx:
			toPrimary = true
			req := o.M.Body.(TxRequest)
			if req.Seq != 1 || req.Type != "deposit" {
				t.Errorf("req = %+v", req)
			}
		case o.Dest == "c" && o.M.Hdr == HdrClientRetry && o.Delay == time.Second:
			retryTimer = true
		}
	}
	if !toPrimary || !retryTimer {
		t.Errorf("outs = %v", outs)
	}
}

func TestClientSubmitPanicsWhenBusy(t *testing.T) {
	cli := &Client{Slf: "c", Mode: ModePBR, Replicas: []msg.Loc{"r1"}}
	cli.Submit("x", nil)
	defer func() {
		if recover() == nil {
			t.Error("second Submit did not panic")
		}
	}()
	cli.Submit("y", nil)
}

func TestClientResult(t *testing.T) {
	cli := &Client{Slf: "c", Mode: ModePBR, Replicas: []msg.Loc{"r1"}}
	cli.Submit("x", nil)
	// A result for a different sequence number is ignored.
	res, _ := cli.Handle(msg.M(HdrTxResult, TxResult{Client: "c", Seq: 99}))
	if res != nil {
		t.Error("stale result accepted")
	}
	res, _ = cli.Handle(msg.M(HdrTxResult, TxResult{Client: "c", Seq: 1}))
	if res == nil {
		t.Fatal("matching result dropped")
	}
	if cli.Busy() || cli.Done != 1 {
		t.Errorf("Busy=%v Done=%d", cli.Busy(), cli.Done)
	}
	// Duplicate answers are ignored.
	res, _ = cli.Handle(msg.M(HdrTxResult, TxResult{Client: "c", Seq: 1}))
	if res != nil || cli.Done != 1 {
		t.Error("duplicate answer double-counted")
	}
}

func TestClientRedirect(t *testing.T) {
	cli := &Client{Slf: "c", Mode: ModePBR, Replicas: []msg.Loc{"r1", "r2"}}
	cli.Submit("x", nil)
	_, outs := cli.Handle(msg.M(HdrRedirect, Redirect{Primary: "r2", CfgSeq: 1}))
	found := false
	for _, o := range outs {
		if o.Dest == "r2" && o.M.Hdr == HdrTx {
			found = true
			if o.M.Body.(TxRequest).Seq != 1 {
				t.Error("redirect resent with a new sequence number")
			}
		}
	}
	if !found {
		t.Errorf("redirect did not resend to r2: %v", outs)
	}
}

func TestClientRetryRotates(t *testing.T) {
	cli := &Client{Slf: "c", Mode: ModePBR, Replicas: []msg.Loc{"r1", "r2", "r3"}}
	cli.Submit("x", nil)
	_, outs := cli.Handle(msg.M(HdrClientRetry, ClientRetryBody{Seq: 1}))
	sentTo := msg.Loc("")
	for _, o := range outs {
		if o.M.Hdr == HdrTx {
			sentTo = o.Dest
		}
	}
	if sentTo != "r2" {
		t.Errorf("retry went to %s, want r2", sentTo)
	}
	if cli.Retries != 1 {
		t.Errorf("Retries = %d", cli.Retries)
	}
	// A retry timer for an already-completed request does nothing.
	cli.Handle(msg.M(HdrTxResult, TxResult{Client: "c", Seq: 1}))
	_, outs = cli.Handle(msg.M(HdrClientRetry, ClientRetryBody{Seq: 1}))
	if len(outs) != 0 {
		t.Errorf("stale retry produced %v", outs)
	}
}

func TestClientBackoffGrowsAndCaps(t *testing.T) {
	cli := &Client{
		Slf: "c", Mode: ModePBR, Replicas: []msg.Loc{"r1", "r2"},
		Retry: time.Second, RetryCap: 4 * time.Second,
	}
	delayOf := func(outs []msg.Directive) time.Duration {
		for _, o := range outs {
			if o.M.Hdr == HdrClientRetry {
				return o.Delay
			}
		}
		t.Fatal("no retry timer armed")
		return 0
	}
	// First send: exactly the base timeout, no jitter.
	if d := delayOf(cli.Submit("x", nil)); d != time.Second {
		t.Fatalf("first timer %v, want exactly %v", d, time.Second)
	}
	// Each retry roughly doubles (±25% jitter), then saturates at the cap.
	var prev time.Duration
	for i := 1; i <= 6; i++ {
		_, outs := cli.Handle(msg.M(HdrClientRetry, ClientRetryBody{Seq: 1}))
		d := delayOf(outs)
		want := time.Second << i
		if want > 4*time.Second {
			want = 4 * time.Second
		}
		lo := want - want/4
		hi := want + want/4
		if d < lo || d > hi {
			t.Fatalf("retry %d delay %v outside [%v,%v]", i, d, lo, hi)
		}
		prev = d
	}
	_ = prev
	// Completion resets the backoff for the next transaction.
	cli.Handle(msg.M(HdrTxResult, TxResult{Client: "c", Seq: 1}))
	if d := delayOf(cli.Submit("y", nil)); d != time.Second {
		t.Fatalf("post-completion timer %v, want base %v", d, time.Second)
	}
}

func TestClientBackoffDeterministic(t *testing.T) {
	run := func() []time.Duration {
		cli := &Client{
			Slf: "c", Mode: ModePBR, Replicas: []msg.Loc{"r1"},
			Retry: time.Second, JitterSeed: 42,
		}
		cli.Submit("x", nil)
		var out []time.Duration
		for i := 0; i < 5; i++ {
			_, outs := cli.Handle(msg.M(HdrClientRetry, ClientRetryBody{Seq: 1}))
			for _, o := range outs {
				if o.M.Hdr == HdrClientRetry {
					out = append(out, o.Delay)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("collected %d delays", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d jitter differs across identical clients: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClientSMRSubmitAndRetryRotatesNodes(t *testing.T) {
	cli := &Client{Slf: "c", Mode: ModeSMR, BcastNodes: []msg.Loc{"b1", "b2", "b3"}, Retry: time.Second}
	outs := cli.Submit("x", []any{int64(1)})
	sent := 0
	for _, o := range outs {
		if o.M.Hdr == broadcast.HdrBcast {
			sent++
			if o.Dest != "b1" {
				t.Errorf("first submit went to %s, want b1", o.Dest)
			}
		}
	}
	if sent != 1 {
		t.Fatalf("SMR submit sent %d broadcast copies, want exactly 1", sent)
	}
	_, outs = cli.Handle(msg.M(HdrClientRetry, ClientRetryBody{Seq: 1}))
	for _, o := range outs {
		if o.M.Hdr == broadcast.HdrBcast && o.Dest != "b2" {
			t.Errorf("retry went to %s, want b2", o.Dest)
		}
	}
}
