// Package core implements ShadowDB, the paper's replicated database
// (Section III). Two replication protocols are provided over the same
// transaction substrate:
//
//   - PBR (pbr.go): primary-backup replication with a hand-written normal
//     case and recovery driven by the verified total order broadcast
//     service — new configurations are agreed through the broadcast, the
//     new primary is the surviving replica with the highest executed
//     sequence number, and lagging or fresh replicas are brought up to
//     date with cached transactions or a full state transfer.
//
//   - SMR (smr.go): state machine replication where every transaction is
//     ordered by the broadcast service and executed by every replica; the
//     client takes the first answer, so replica crashes are transparent.
//
// Transactions are typed procedures with parameters ("Submitting a
// transaction T involves sending T's type and its parameters to a
// server"), executed deterministically and sequentially against the
// sqldb substrate. Exactly-once execution under client retry is ensured
// by per-client sequence numbers, "recording the sequence number of the
// last transaction submitted by each client" as in the paper.
package core

import (
	"fmt"
	"sync"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/sqldb"
)

// Message headers of ShadowDB.
const (
	// HdrTx is a client transaction request (to the PBR primary, or
	// wrapped in a broadcast for SMR).
	HdrTx = "sdb.tx"
	// HdrTxResult is the server's answer to the client.
	HdrTxResult = "sdb.txresult"
	// HdrRedirect tells a client which replica is the primary.
	HdrRedirect = "sdb.redirect"
	// HdrRepl is the primary->backup transaction forward.
	HdrRepl = "sdb.repl"
	// HdrReplAck is the backup's acknowledgment.
	HdrReplAck = "sdb.replack"
	// HdrHeartbeat is the mutual liveness probe.
	HdrHeartbeat = "sdb.hb"
	// HdrHBTick is the local failure-detector timer.
	HdrHBTick = "sdb.hbtick"
	// HdrElect carries (config seq, executed seq) during primary election.
	HdrElect = "sdb.elect"
	// HdrCatchup carries missing transactions to a lagging backup.
	HdrCatchup = "sdb.catchup"
	// HdrCatchupReq is a backup's explicit request for missing
	// transactions (a replication gap that retransmission-free forwarding
	// would otherwise never repair).
	HdrCatchupReq = "sdb.catchupreq"
	// HdrSnapBegin / HdrSnapBatch / HdrSnapEnd carry a state transfer.
	HdrSnapBegin = "sdb.snapbegin"
	HdrSnapBatch = "sdb.snapbatch"
	HdrSnapEnd   = "sdb.snapend"
	// HdrRecovered is the backup's "I am up to date" signal.
	HdrRecovered = "sdb.recovered"
	// HdrSMRCatchupReq / HdrSMRCatchup carry the SMR delta protocol: a
	// restarted replica that recovered from its local snapshot + journal
	// asks a peer for the slots ordered during its downtime, and the peer
	// answers with the decided batches (or falls back to a full state
	// transfer when its own journal no longer reaches back that far).
	HdrSMRCatchupReq = "sdb.smr.catchupreq"
	HdrSMRCatchup    = "sdb.smr.catchup"
	// HdrRead is a client read served locally by a replica (lease or
	// follower mode), skipping the consensus round; HdrReadResult is the
	// answer. HdrLeaseTick is the lease holder's local renewal timer.
	HdrRead       = "sdb.read"
	HdrReadResult = "sdb.readresult"
	HdrLeaseTick  = "sdb.leasetick"
	// HdrSyncTick is the durable replica's group-commit timer: parked
	// client acks are released once the covering fsync runs.
	HdrSyncTick = "sdb.synctick"
)

// TxRequest is a typed transaction invocation.
type TxRequest struct {
	// Client is where the answer goes; Seq is the client's sequence
	// number for exactly-once execution.
	Client msg.Loc
	Seq    int64
	// Type names a registered procedure; Args are its parameters.
	Type string
	Args []any
	// Deadline is the request's absolute deadline (nanoseconds on the
	// deployment clock, 0 = none), stamped by the client. Non-replicated
	// hops (router, sequencer intake) drop the request with an explicit
	// flow.Reject once it expires; replicated hops apply regardless (the
	// order is the order) but suppress the client ack. Gob omits zero
	// fields, so deadline-free traffic pays no wire cost.
	Deadline int64
}

// Key identifies the request for deduplication.
func (r TxRequest) Key() string { return fmt.Sprintf("%s/%d", r.Client, r.Seq) }

// TxResult is the transaction outcome returned to the client.
type TxResult struct {
	Client msg.Loc
	Seq    int64
	// Aborted reports a deterministic transaction abort (not a failure).
	Aborted bool
	// Err carries an execution error message ("" when none).
	Err string
	// Cols/Rows carry the result set of the procedure, if any.
	Cols []string
	Rows [][]sqldb.Value
}

// ReadMode selects the consistency mode of a local read.
type ReadMode int

// The read modes.
const (
	// ReadLease is a linearizable read served by the lease holder without
	// a consensus round: validity of the lease guarantees no other
	// replica could have acknowledged a newer write.
	ReadLease ReadMode = iota + 1
	// ReadFollower is a bounded-staleness read served by any replica: the
	// serving replica proves (via the last applied lease renewal, which
	// doubles as an ordered clock beacon) that its state is at most
	// MaxStale behind the acknowledged frontier.
	ReadFollower
)

func (m ReadMode) String() string {
	switch m {
	case ReadLease:
		return "lease"
	case ReadFollower:
		return "follower"
	}
	return fmt.Sprintf("ReadMode(%d)", int(m))
}

// ReadRequest is a typed read-only invocation sent directly to one
// replica (no broadcast). Type names a registered read procedure.
type ReadRequest struct {
	Client msg.Loc
	Seq    int64
	Type   string
	Args   []any
	Mode   ReadMode
}

// ReadResult is the answer to a ReadRequest. It travels as a pointer
// body (see AcquireReadResult) so the steady-state serve loop boxes no
// values; Vals is the flat single-row result of a fast read procedure,
// reusing its backing array across serves.
type ReadResult struct {
	Client msg.Loc
	Seq    int64
	Mode   ReadMode
	// Slot is the replica's applied-slot frontier when the read was
	// served — the evidence the staleness checker audits.
	Slot int
	// Issue is the issue timestamp (virtual ns) of the lease renewal
	// covering this serve.
	Issue int64
	// Rejected reports that the replica declined to serve in the
	// requested mode (no valid lease / staleness bound exceeded). The
	// client retries or falls back to a consensus-path read.
	Rejected bool
	Err      string
	Cols     []string
	Vals     []sqldb.Value
}

var readResultPool = sync.Pool{New: func() any { return new(ReadResult) }}

// AcquireReadResult returns a cleared ReadResult from the pool. The
// serve path fills it and sends it as a pointer body; the consumer
// calls ReleaseReadResult once done. In the single-threaded simulation
// this makes the serve loop allocation-free after warm-up.
func AcquireReadResult() *ReadResult {
	r := readResultPool.Get().(*ReadResult)
	r.Client, r.Seq, r.Mode, r.Slot, r.Issue = "", 0, 0, 0, 0
	r.Rejected, r.Err, r.Cols = false, "", nil
	r.Vals = r.Vals[:0]
	return r
}

// ReleaseReadResult returns a consumed result to the pool.
func ReleaseReadResult(r *ReadResult) {
	if r != nil {
		readResultPool.Put(r)
	}
}

// LeaseTick is the lease renewal timer body.
type LeaseTick struct{}

// SyncTick is the group-commit timer body.
type SyncTick struct{}

// Redirect points a client at the current primary.
type Redirect struct {
	Primary msg.Loc
	CfgSeq  int
}

// Repl is the primary->backup forward of one ordered transaction.
type Repl struct {
	CfgSeq int
	Order  int64 // global execution order number
	Req    TxRequest
}

// ReplAck acknowledges execution of an ordered transaction.
type ReplAck struct {
	CfgSeq int
	Order  int64
	From   msg.Loc
}

// Heartbeat is the liveness probe. It doubles as configuration gossip:
// Members carries the sender's view of the current configuration
// (primary first once elected) so replicas that missed a
// reconfiguration — restarted, or on the wrong side of a partition —
// can adopt it, and Stopped exposes the sender's recovery state so
// peers can re-send signals lost on a faulty link.
type Heartbeat struct {
	From    msg.Loc
	CfgSeq  int
	Members []msg.Loc
	Stopped bool
	// Elected reports that Members is the authoritative order (primary
	// first): the sender is not mid-election. A member whose election
	// tally never closed — its votes crossed a partition — adopts the
	// order from the first elected peer it hears.
	Elected bool
}

// HBTick is the local failure-detector timer body.
type HBTick struct{}

// NewConfig is the recovery proposal, agreed through the total order
// broadcast service. It is tagged with the sequence number of the
// configuration it replaces; only the first proposal per configuration
// wins (Section III-A, step 3).
type NewConfig struct {
	OldSeq   int
	Members  []msg.Loc // surviving replicas + replacement spares
	Proposer msg.Loc
}

// Elect carries a member's executed sequence number for the new
// configuration's primary election.
type Elect struct {
	CfgSeq   int
	From     msg.Loc
	Executed int64
	// HasData reports whether the sender holds a full copy of the
	// database (fresh spares do not).
	HasData bool
}

// Catchup carries transactions a lagging backup is missing.
type Catchup struct {
	CfgSeq int
	From   int64 // order number of the first entry
	Txs    []Repl
}

// CatchupReq asks the primary for every transaction after Since. Backups
// send it when a forward gap persists (lost Repl) and when configuration
// gossip reveals they are behind an adopted configuration. While a state
// transfer to the requester is already in flight the primary ignores
// repeats; Resync overrides that and forces a fresh transfer — the
// backup sets it after asking several times without seeing any transfer
// traffic, which means the in-flight one was lost to the network.
type CatchupReq struct {
	CfgSeq int
	From   msg.Loc
	Since  int64
	Resync bool
}

// SnapBegin opens a state transfer. Xfer identifies the transfer: the
// sender numbers transfers monotonically, so a receiver can discard
// batches of a superseded transfer and ignore duplicate or stale begins
// instead of restarting assembly from scratch.
type SnapBegin struct {
	CfgSeq  int
	Xfer    int64
	Schemas []sqldb.CreateTable
	// Order is the execution order number the snapshot reflects.
	Order int64
}

// SnapBatch carries one batch of rows.
type SnapBatch struct {
	CfgSeq int
	Xfer   int64
	Table  string
	Rows   [][]sqldb.Value
	// N is the batch index, Last marks the final batch of the table.
	N int
}

// SnapEnd closes a state transfer. Batches lets the receiver detect that
// some batches are still in flight (reordered or delayed) and defer
// completion until they arrive. Executed and LastSeq carry the sender's
// dedup horizon on SMR transfers: without them a joiner would re-execute
// a client retry that the established replicas deduplicate, silently
// diverging from the group. PBR transfers leave them zero.
type SnapEnd struct {
	CfgSeq   int
	Xfer     int64
	Order    int64
	Batches  int
	Executed int64
	LastSeq  map[string]int64
	// Recent carries the sender's newest cached result per client, so a
	// receiver that later becomes the lease holder can re-emit acks for
	// writes it never executed locally (see SMRReplica.reAck).
	Recent []TxResult
	// Epochs and Joined carry the sender's membership schedule. A
	// transfer that covers a membership command's slot is the only copy
	// of that command the receiver will ever see — the slots it covers
	// are never redelivered.
	Epochs []member.Config
	Joined map[msg.Loc]int
}

// Recovered signals a backup is in sync.
type Recovered struct {
	CfgSeq int
	From   msg.Loc
}

// SMRCatchupReq asks a peer replica for every slot after After. From is
// the requester; After is the highest contiguous slot it has applied
// (from local recovery, or the last delivery before a gap appeared).
type SMRCatchupReq struct {
	From  msg.Loc
	After int
}

// SMRCatchup answers with the decided batches the requester is missing,
// in slot order. A peer whose journal has been compacted past After
// sends a state transfer (SnapBegin/SnapBatch/SnapEnd) instead.
type SMRCatchup struct {
	Delivers []broadcast.Deliver
}

// RegisterWireTypes registers ShadowDB bodies with the wire codec,
// including the basic value types that travel inside TxRequest.Args and
// result rows.
func RegisterWireTypes() {
	gobBasics()
	for _, v := range []any{
		TxRequest{}, TxResult{}, Redirect{}, Repl{}, ReplAck{}, Heartbeat{}, HBTick{},
		NewConfig{}, Elect{}, Catchup{}, CatchupReq{}, SnapBegin{}, SnapBatch{}, SnapEnd{},
		Recovered{}, ClientRetryBody{}, SMRCatchupReq{}, SMRCatchup{},
		ReadRequest{}, &ReadResult{}, LeaseTick{}, SyncTick{},
	} {
		msg.RegisterBody(v)
	}
}

// Config is a replica-group configuration: a sequence number and an
// ordered member list whose first element is the primary.
type Config struct {
	Seq     int
	Members []msg.Loc
}

// Primary returns the configuration's primary.
func (c Config) Primary() msg.Loc {
	if len(c.Members) == 0 {
		return ""
	}
	return c.Members[0]
}

// Backups returns the non-primary members.
func (c Config) Backups() []msg.Loc {
	if len(c.Members) == 0 {
		return nil
	}
	return c.Members[1:]
}

// Contains reports membership.
func (c Config) Contains(l msg.Loc) bool {
	for _, m := range c.Members {
		if m == l {
			return true
		}
	}
	return false
}

// Timing groups the failure-detection and retry knobs.
type Timing struct {
	// HeartbeatEvery is the probe period.
	HeartbeatEvery time.Duration
	// SuspectAfter is how long without heartbeats before suspicion; the
	// paper used 10 s ("detection time is configurable").
	SuspectAfter time.Duration
	// ClientRetry is the client's resend timeout.
	ClientRetry time.Duration
}

// DefaultTiming mirrors the paper's recovery experiment.
func DefaultTiming() Timing {
	return Timing{
		HeartbeatEvery: 500 * time.Millisecond,
		SuspectAfter:   10 * time.Second,
		ClientRetry:    2 * time.Second,
	}
}
