package core

import (
	"fmt"
	"sort"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/netutil"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// SMR durability. A durable SMR replica journals every delivered slot
// (the decided batch, verbatim) before executing it, and compacts the
// journal into a full database snapshot every smrSnapEvery slots. After
// a crash, a new incarnation over the same store recovers by restoring
// the snapshot and deterministically re-executing the journal tail —
// then asks a peer only for the slots ordered during its downtime
// (SMRCatchupReq/SMRCatchup), instead of pulling the whole database
// over the network. The peer serves the delta from its own journal, or
// falls back to a full state transfer when compaction has discarded the
// requested range.

// walDeliver journals one delivered slot.
type walDeliver struct {
	Slot int
	Msgs []broadcast.Bcast
}

// smrSnapshot is the compacted journal: the database, the slot frontier
// it reflects, the executor's dedup horizon and recent results, and the
// membership epoch schedule in force at the frontier. The schedule must
// be here: a membership command compacted into the snapshot is never
// replayed, so without it a restarted replica would recover the rows of
// epoch N while believing itself in epoch 0 — and, with leases on,
// grant renewals from a deposed holder that every live replica refuses.
type smrSnapshot struct {
	Dumps    []sqldb.TableDump
	Slot     int
	Executed int64
	LastSeq  map[string]int64
	Recent   []TxResult
	Epochs   []member.Config
	Joined   map[msg.Loc]int
}

// smrSnapEvery is how many journaled slots trigger a compaction.
const smrSnapEvery = 64

// NewDurableSMRReplica creates an SMR replica that journals to st and
// recovers any durable state the store already holds. peers are the
// other replicas of the group (catch-up targets). When the store is
// fresh, the database must already hold the initial schema and
// population: the baseline snapshot written here is the only durable
// copy of rows that never travel through the broadcast.
func NewDurableSMRReplica(slf msg.Loc, db *sqldb.DB, reg Registry, st store.Stable, peers []msg.Loc) (*SMRReplica, error) {
	r := NewSMRReplica(slf, db, reg)
	r.stable = st
	r.snapSlot = -1
	r.pending = make(map[int]broadcast.Deliver)
	for _, p := range peers {
		if p != slf {
			r.peers = append(r.peers, p)
		}
	}
	restored, err := r.recoverLocal()
	if err != nil {
		return nil, err
	}
	if !restored {
		if err := r.saveSMRSnapshot(); err != nil {
			return nil, fmt.Errorf("core: seed baseline snapshot: %w", err)
		}
	}
	return r, nil
}

// NewJoiningDurableSMRReplica creates a durable replica that joins an
// existing group: it stays inactive — parking deliveries by slot —
// until the ordered add-replica command makes the configured proposer
// push a bootstrap snapshot (onSnapEnd installs it, persists it as the
// journal baseline, and drains the parked tail). The database starts
// empty: schema and rows arrive with the transfer. A restarted joiner
// that already bootstrapped once recovers like an established durable
// replica.
func NewJoiningDurableSMRReplica(slf msg.Loc, db *sqldb.DB, reg Registry, st store.Stable, peers []msg.Loc) (*SMRReplica, error) {
	r := NewSMRReplica(slf, db, reg)
	r.active = false
	r.stable = st
	r.snapSlot = -1
	r.pending = make(map[int]broadcast.Deliver)
	for _, p := range peers {
		if p != slf {
			r.peers = append(r.peers, p)
		}
	}
	restored, err := r.recoverLocal()
	if err != nil {
		return nil, err
	}
	if restored {
		// The previous incarnation finished (or at least began) its
		// bootstrap: resume as an established durable replica.
		r.active = true
	}
	// No baseline snapshot of the empty database: the bootstrap transfer
	// provides the first durable baseline.
	return r, nil
}

// Recovered reports whether the replica restored state from its store
// (false when the store was fresh).
func (r *SMRReplica) Recovered() bool { return r.recoveredLocal }

// LastSlot returns the highest contiguously applied slot.
func (r *SMRReplica) LastSlot() int { return r.lastSlot }

// recoveryBackoff is how long after the boot-time catch-up request a
// restarted replica asks again (a flat 2s schedule expressed as the
// shared netutil policy). The first round can be lost without an error
// on either side (peers may still hold connections to the dead
// incarnation); peers answer idempotently and already-applied slots
// are skipped, so the duplicate is free on the happy path.
var recoveryBackoff = netutil.Backoff{Base: 2 * time.Second, Cap: 2 * time.Second}

// RecoveryDirectives returns the messages a restarted replica sends to
// fetch the slots ordered during its downtime. The host injects them
// once the replica is back on the network (the replica itself is
// constructed outside any message flow). Each request is issued twice —
// immediately and after one recoveryBackoff interval — so a lost first
// round cannot strand the replica behind until the next live delivery.
func (r *SMRReplica) RecoveryDirectives() []msg.Directive {
	if r.stable == nil {
		return nil
	}
	outs := r.requestCatchup()
	for _, o := range r.requestCatchup() {
		o.Delay = recoveryBackoff.Delay(0, 0)
		outs = append(outs, o)
	}
	return outs
}

// recoverLocal rebuilds state from the store: snapshot, then journal.
func (r *SMRReplica) recoverLocal() (bool, error) {
	restored := false
	if b, ok, err := r.stable.Snapshot(); err != nil {
		return false, err
	} else if ok {
		var snap smrSnapshot
		if gobDec(b, &snap) == nil {
			if err := r.exec.DB.Restore(snap.Dumps); err != nil {
				return false, fmt.Errorf("core: restore smr snapshot: %w", err)
			}
			r.exec.InstallSnapshot(snap.Executed)
			for c, s := range snap.LastSeq {
				r.exec.SetLastSeq(c, s)
			}
			r.exec.AdoptRecent(snap.Recent)
			// The epoch schedule folds into the view at SetView time —
			// the view is attached after construction, and recovery runs
			// inside the constructor.
			r.recEpochs, r.recJoined = snap.Epochs, snap.Joined
			r.lastSlot = snap.Slot
			r.snapSlot = snap.Slot
			restored = true
		}
	}
	err := r.stable.Replay(func(rec []byte) error {
		var w walDeliver
		if gobDec(rec, &w) != nil {
			return nil // skip an undecodable record, keep the rest
		}
		if w.Slot != r.lastSlot+1 {
			return nil // pre-snapshot straggler or duplicate
		}
		r.lastSlot = w.Slot
		// Re-execute; nothing is listening yet, so the replies (already
		// sent by the pre-crash incarnation) are discarded.
		_ = r.applyBatch(broadcast.Deliver{Slot: w.Slot, Msgs: w.Msgs})
		restored = true
		return nil
	})
	r.recoveredLocal = restored
	if restored {
		lg.WithNode(r.slf).Infof("smr local recovery: snapshot slot %d, replayed to slot %d", r.snapSlot, r.lastSlot)
	}
	return restored, err
}

// durableDeliver handles a live delivery on the durable path. A gap —
// slots the replica missed while down — parks the delivery and asks a
// peer for the missing range; contiguous slots are journaled
// write-ahead of execution.
func (r *SMRReplica) durableDeliver(d broadcast.Deliver) []msg.Directive {
	if d.Slot > r.lastSlot+1 {
		r.pending[d.Slot] = d
		lg.WithNode(r.slf).Infof("smr gap: got slot %d with frontier %d, requesting catch-up", d.Slot, r.lastSlot)
		return r.requestCatchup()
	}
	outs := r.journalAndApply(d, false)
	return append(outs, r.drainPending()...)
}

// SetGroupCommit coalesces the journal fsyncs of up to every slots:
// client acks are parked until a covering Sync, released when the
// window fills or after delay at the latest (the HdrSyncTick timer).
// The write-ahead contract is preserved exactly — an acknowledged
// transaction is always covered by an fsync — while a full pipeline
// window costs one fsync instead of one per slot. Catch-up traffic and
// snapshot pushes are not promises of durability and pass immediately.
func (r *SMRReplica) SetGroupCommit(every int, delay time.Duration) {
	if every < 1 {
		every = 1
	}
	if delay <= 0 {
		delay = 2 * time.Millisecond
	}
	r.gcEvery, r.gcDelay = every, delay
}

// journalAndApply persists the slot, executes it, and compacts when
// due. quiet drops the client replies — used for catch-up application,
// where the transactions were already answered by live replicas.
func (r *SMRReplica) journalAndApply(d broadcast.Deliver, quiet bool) []msg.Directive {
	if err := r.stable.Append(gobEnc(walDeliver{Slot: d.Slot, Msgs: d.Msgs})); err != nil {
		panic(fmt.Sprintf("core: smr journal: %v", err))
	}
	mSMRAppends.Inc()
	r.lastSlot = d.Slot
	outs := r.applyBatch(d)
	if quiet {
		trimmed := dropTxResults(outs)
		if r.lease != nil && len(trimmed) < len(outs) {
			// Quiet catch-up swallowed client replies; the re-ack path
			// must still cover them once this replica holds a valid
			// lease (they may include writes nobody else acknowledged).
			r.ackGap = true
		}
		outs = trimmed
	}
	snapped := false
	r.sinceSnap++
	if r.sinceSnap >= smrSnapEvery {
		if err := r.saveSMRSnapshot(); err != nil {
			panic(fmt.Sprintf("core: smr snapshot: %v", err))
		}
		snapped = true
	}
	if r.gcEvery > 1 {
		outs = r.groupCommit(outs, snapped)
	}
	return outs
}

// groupCommit parks the client acks of a freshly journaled slot until
// a covering fsync. snapped means a snapshot was just saved — its own
// fsync already covers everything, so parked acks release for free.
// Only ack-bearing slots demand a covering sync at all: a slot whose
// apply produced no client replies (lease renewals, suppressed acks,
// quiet catch-up) promises nothing, so its journal append simply rides
// until the next ack-bearing window — Sync flushes the whole appended
// tail, so the deferred slots are covered by that later fsync.
func (r *SMRReplica) groupCommit(outs []msg.Directive, snapped bool) []msg.Directive {
	kept := outs[:0]
	parked0 := len(r.parked)
	for _, o := range outs {
		if o.M.Hdr == HdrTxResult {
			r.parked = append(r.parked, o)
		} else {
			kept = append(kept, o)
		}
	}
	outs = kept
	if snapped {
		r.unsyncedSlots = 0
		if len(r.parked) > 0 {
			return append(outs, r.releaseParked(true)...)
		}
		return outs
	}
	if len(r.parked) == parked0 {
		return outs // ack-free slot: nothing promised, no sync owed
	}
	r.unsyncedSlots++
	if r.unsyncedSlots >= r.gcEvery {
		return append(outs, r.releaseParked(false)...)
	}
	if !r.syncTimer {
		r.syncTimer = true
		outs = append(outs, msg.SendAfter(r.gcDelay, r.slf, msg.M(HdrSyncTick, SyncTick{})))
	}
	return outs
}

// releaseParked runs the covering fsync (unless one is already implied
// by a snapshot save) and returns the parked acks.
func (r *SMRReplica) releaseParked(covered bool) []msg.Directive {
	if !covered {
		if err := r.stable.Sync(); err != nil {
			panic(fmt.Sprintf("core: smr group-commit sync: %v", err))
		}
	}
	mGroupSyncs.Inc()
	r.unsyncedSlots = 0
	outs := r.parked
	r.parked = nil
	return outs
}

// onSyncTick is the group-commit deadline: whatever acks are parked
// when it fires are released under one covering fsync. Nothing parked
// (a snapshot's fsync released them first) means nothing is owed.
func (r *SMRReplica) onSyncTick() []msg.Directive {
	r.syncTimer = false
	if len(r.parked) == 0 {
		return nil
	}
	return r.releaseParked(false)
}

// drainPending applies parked deliveries that became contiguous.
func (r *SMRReplica) drainPending() []msg.Directive {
	var outs []msg.Directive
	for {
		d, ok := r.pending[r.lastSlot+1]
		if !ok {
			return outs
		}
		delete(r.pending, d.Slot)
		outs = append(outs, r.journalAndApply(d, false)...)
	}
}

// saveSMRSnapshot compacts the journal into a database snapshot.
func (r *SMRReplica) saveSMRSnapshot() error {
	snap := smrSnapshot{
		Dumps:    r.exec.DB.Snapshot(),
		Slot:     r.lastSlot,
		Executed: r.exec.Executed,
		LastSeq:  r.exec.LastSeqs(),
		Recent:   r.exec.RecentResults(),
	}
	if r.view != nil {
		snap.Epochs = r.view.Epochs()
		snap.Joined = r.view.Joined()
	}
	if err := r.stable.SaveSnapshot(gobEnc(snap)); err != nil {
		return err
	}
	r.snapSlot = r.lastSlot
	r.sinceSnap = 0
	return nil
}

// requestCatchup asks every peer for the slots after the local
// frontier. Peers answer idempotently, so overlapping replies are safe.
func (r *SMRReplica) requestCatchup() []msg.Directive {
	var outs []msg.Directive
	for _, p := range r.peers {
		outs = append(outs, msg.Send(p, msg.M(HdrSMRCatchupReq, SMRCatchupReq{From: r.slf, After: r.lastSlot})))
	}
	return outs
}

// onSMRCatchupReq serves a peer's delta request from the local journal,
// or pushes a full state transfer when compaction discarded the range.
func (r *SMRReplica) onSMRCatchupReq(q SMRCatchupReq) []msg.Directive {
	if !r.active || q.From == r.slf {
		return nil
	}
	if r.stable != nil && q.After >= r.snapSlot {
		var ds []broadcast.Deliver
		err := r.stable.Replay(func(rec []byte) error {
			var w walDeliver
			if gobDec(rec, &w) == nil && w.Slot > q.After {
				ds = append(ds, broadcast.Deliver{Slot: w.Slot, Msgs: w.Msgs})
			}
			return nil
		})
		if err == nil {
			return []msg.Directive{msg.Send(q.From, msg.M(HdrSMRCatchup, SMRCatchup{Delivers: ds}))}
		}
	}
	// The journal no longer reaches back to After (or this replica is
	// volatile): a full state transfer is needed. Under dynamic
	// membership only the deterministic proposer pushes it — the
	// requester asks every peer, and concurrent transfers from several
	// of them would interleave their batches at the receiver. The other
	// peers stay silent; the requester's delayed retry covers a lost
	// push.
	if r.view != nil && r.slf != member.Proposer(r.view.Current(), q.From) {
		return nil
	}
	return r.pushSnapshot(q.From)
}

// onSMRCatchup applies a peer-served delta: contiguous slots are
// journaled and executed (quietly — the live replicas already answered
// these clients), out-of-order ones are parked.
func (r *SMRReplica) onSMRCatchup(c SMRCatchup) []msg.Directive {
	if r.stable == nil || !r.active {
		return nil
	}
	ds := append([]broadcast.Deliver(nil), c.Delivers...)
	sort.Slice(ds, func(i, j int) bool { return ds[i].Slot < ds[j].Slot })
	var outs []msg.Directive
	for _, d := range ds {
		switch {
		case d.Slot <= r.lastSlot:
			// already applied
		case d.Slot == r.lastSlot+1:
			outs = append(outs, r.journalAndApply(d, true)...)
		default:
			r.pending[d.Slot] = d
		}
	}
	return append(outs, r.drainPending()...)
}

// dropTxResults filters the client replies out of a directive list.
func dropTxResults(outs []msg.Directive) []msg.Directive {
	kept := outs[:0]
	for _, o := range outs {
		if o.M.Hdr != HdrTxResult {
			kept = append(kept, o)
		}
	}
	return kept
}
