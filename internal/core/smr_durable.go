package core

import (
	"fmt"
	"sort"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/netutil"
	"shadowdb/internal/sqldb"
	"shadowdb/internal/store"
)

// SMR durability. A durable SMR replica journals every delivered slot
// (the decided batch, verbatim) before executing it, and compacts the
// journal into a full database snapshot every smrSnapEvery slots. After
// a crash, a new incarnation over the same store recovers by restoring
// the snapshot and deterministically re-executing the journal tail —
// then asks a peer only for the slots ordered during its downtime
// (SMRCatchupReq/SMRCatchup), instead of pulling the whole database
// over the network. The peer serves the delta from its own journal, or
// falls back to a full state transfer when compaction has discarded the
// requested range.

// walDeliver journals one delivered slot.
type walDeliver struct {
	Slot int
	Msgs []broadcast.Bcast
}

// smrSnapshot is the compacted journal: the database, the slot frontier
// it reflects, and the executor's dedup horizon.
type smrSnapshot struct {
	Dumps    []sqldb.TableDump
	Slot     int
	Executed int64
	LastSeq  map[string]int64
}

// smrSnapEvery is how many journaled slots trigger a compaction.
const smrSnapEvery = 64

// NewDurableSMRReplica creates an SMR replica that journals to st and
// recovers any durable state the store already holds. peers are the
// other replicas of the group (catch-up targets). When the store is
// fresh, the database must already hold the initial schema and
// population: the baseline snapshot written here is the only durable
// copy of rows that never travel through the broadcast.
func NewDurableSMRReplica(slf msg.Loc, db *sqldb.DB, reg Registry, st store.Stable, peers []msg.Loc) (*SMRReplica, error) {
	r := NewSMRReplica(slf, db, reg)
	r.stable = st
	r.snapSlot = -1
	r.pending = make(map[int]broadcast.Deliver)
	for _, p := range peers {
		if p != slf {
			r.peers = append(r.peers, p)
		}
	}
	restored, err := r.recoverLocal()
	if err != nil {
		return nil, err
	}
	if !restored {
		if err := r.saveSMRSnapshot(); err != nil {
			return nil, fmt.Errorf("core: seed baseline snapshot: %w", err)
		}
	}
	return r, nil
}

// NewJoiningDurableSMRReplica creates a durable replica that joins an
// existing group: it stays inactive — parking deliveries by slot —
// until the ordered add-replica command makes the configured proposer
// push a bootstrap snapshot (onSnapEnd installs it, persists it as the
// journal baseline, and drains the parked tail). The database starts
// empty: schema and rows arrive with the transfer. A restarted joiner
// that already bootstrapped once recovers like an established durable
// replica.
func NewJoiningDurableSMRReplica(slf msg.Loc, db *sqldb.DB, reg Registry, st store.Stable, peers []msg.Loc) (*SMRReplica, error) {
	r := NewSMRReplica(slf, db, reg)
	r.active = false
	r.stable = st
	r.snapSlot = -1
	r.pending = make(map[int]broadcast.Deliver)
	for _, p := range peers {
		if p != slf {
			r.peers = append(r.peers, p)
		}
	}
	restored, err := r.recoverLocal()
	if err != nil {
		return nil, err
	}
	if restored {
		// The previous incarnation finished (or at least began) its
		// bootstrap: resume as an established durable replica.
		r.active = true
	}
	// No baseline snapshot of the empty database: the bootstrap transfer
	// provides the first durable baseline.
	return r, nil
}

// Recovered reports whether the replica restored state from its store
// (false when the store was fresh).
func (r *SMRReplica) Recovered() bool { return r.recoveredLocal }

// LastSlot returns the highest contiguously applied slot.
func (r *SMRReplica) LastSlot() int { return r.lastSlot }

// recoveryBackoff is how long after the boot-time catch-up request a
// restarted replica asks again (a flat 2s schedule expressed as the
// shared netutil policy). The first round can be lost without an error
// on either side (peers may still hold connections to the dead
// incarnation); peers answer idempotently and already-applied slots
// are skipped, so the duplicate is free on the happy path.
var recoveryBackoff = netutil.Backoff{Base: 2 * time.Second, Cap: 2 * time.Second}

// RecoveryDirectives returns the messages a restarted replica sends to
// fetch the slots ordered during its downtime. The host injects them
// once the replica is back on the network (the replica itself is
// constructed outside any message flow). Each request is issued twice —
// immediately and after one recoveryBackoff interval — so a lost first
// round cannot strand the replica behind until the next live delivery.
func (r *SMRReplica) RecoveryDirectives() []msg.Directive {
	if r.stable == nil {
		return nil
	}
	outs := r.requestCatchup()
	for _, o := range r.requestCatchup() {
		o.Delay = recoveryBackoff.Delay(0, 0)
		outs = append(outs, o)
	}
	return outs
}

// recoverLocal rebuilds state from the store: snapshot, then journal.
func (r *SMRReplica) recoverLocal() (bool, error) {
	restored := false
	if b, ok, err := r.stable.Snapshot(); err != nil {
		return false, err
	} else if ok {
		var snap smrSnapshot
		if gobDec(b, &snap) == nil {
			if err := r.exec.DB.Restore(snap.Dumps); err != nil {
				return false, fmt.Errorf("core: restore smr snapshot: %w", err)
			}
			r.exec.InstallSnapshot(snap.Executed)
			for c, s := range snap.LastSeq {
				r.exec.lastSeq[c] = s
			}
			r.lastSlot = snap.Slot
			r.snapSlot = snap.Slot
			restored = true
		}
	}
	err := r.stable.Replay(func(rec []byte) error {
		var w walDeliver
		if gobDec(rec, &w) != nil {
			return nil // skip an undecodable record, keep the rest
		}
		if w.Slot != r.lastSlot+1 {
			return nil // pre-snapshot straggler or duplicate
		}
		r.lastSlot = w.Slot
		// Re-execute; nothing is listening yet, so the replies (already
		// sent by the pre-crash incarnation) are discarded.
		_ = r.applyBatch(broadcast.Deliver{Slot: w.Slot, Msgs: w.Msgs})
		restored = true
		return nil
	})
	r.recoveredLocal = restored
	if restored {
		lg.WithNode(r.slf).Infof("smr local recovery: snapshot slot %d, replayed to slot %d", r.snapSlot, r.lastSlot)
	}
	return restored, err
}

// durableDeliver handles a live delivery on the durable path. A gap —
// slots the replica missed while down — parks the delivery and asks a
// peer for the missing range; contiguous slots are journaled
// write-ahead of execution.
func (r *SMRReplica) durableDeliver(d broadcast.Deliver) []msg.Directive {
	if d.Slot > r.lastSlot+1 {
		r.pending[d.Slot] = d
		lg.WithNode(r.slf).Infof("smr gap: got slot %d with frontier %d, requesting catch-up", d.Slot, r.lastSlot)
		return r.requestCatchup()
	}
	outs := r.journalAndApply(d, false)
	return append(outs, r.drainPending()...)
}

// journalAndApply persists the slot, executes it, and compacts when
// due. quiet drops the client replies — used for catch-up application,
// where the transactions were already answered by live replicas.
func (r *SMRReplica) journalAndApply(d broadcast.Deliver, quiet bool) []msg.Directive {
	if err := r.stable.Append(gobEnc(walDeliver{Slot: d.Slot, Msgs: d.Msgs})); err != nil {
		panic(fmt.Sprintf("core: smr journal: %v", err))
	}
	r.lastSlot = d.Slot
	outs := r.applyBatch(d)
	if quiet {
		outs = dropTxResults(outs)
	}
	r.sinceSnap++
	if r.sinceSnap >= smrSnapEvery {
		if err := r.saveSMRSnapshot(); err != nil {
			panic(fmt.Sprintf("core: smr snapshot: %v", err))
		}
	}
	return outs
}

// drainPending applies parked deliveries that became contiguous.
func (r *SMRReplica) drainPending() []msg.Directive {
	var outs []msg.Directive
	for {
		d, ok := r.pending[r.lastSlot+1]
		if !ok {
			return outs
		}
		delete(r.pending, d.Slot)
		outs = append(outs, r.journalAndApply(d, false)...)
	}
}

// saveSMRSnapshot compacts the journal into a database snapshot.
func (r *SMRReplica) saveSMRSnapshot() error {
	snap := smrSnapshot{
		Dumps:    r.exec.DB.Snapshot(),
		Slot:     r.lastSlot,
		Executed: r.exec.Executed,
		LastSeq:  make(map[string]int64, len(r.exec.lastSeq)),
	}
	for c, s := range r.exec.lastSeq {
		snap.LastSeq[c] = s
	}
	if err := r.stable.SaveSnapshot(gobEnc(snap)); err != nil {
		return err
	}
	r.snapSlot = r.lastSlot
	r.sinceSnap = 0
	return nil
}

// requestCatchup asks every peer for the slots after the local
// frontier. Peers answer idempotently, so overlapping replies are safe.
func (r *SMRReplica) requestCatchup() []msg.Directive {
	var outs []msg.Directive
	for _, p := range r.peers {
		outs = append(outs, msg.Send(p, msg.M(HdrSMRCatchupReq, SMRCatchupReq{From: r.slf, After: r.lastSlot})))
	}
	return outs
}

// onSMRCatchupReq serves a peer's delta request from the local journal,
// or pushes a full state transfer when compaction discarded the range.
func (r *SMRReplica) onSMRCatchupReq(q SMRCatchupReq) []msg.Directive {
	if !r.active || q.From == r.slf {
		return nil
	}
	if r.stable != nil && q.After >= r.snapSlot {
		var ds []broadcast.Deliver
		err := r.stable.Replay(func(rec []byte) error {
			var w walDeliver
			if gobDec(rec, &w) == nil && w.Slot > q.After {
				ds = append(ds, broadcast.Deliver{Slot: w.Slot, Msgs: w.Msgs})
			}
			return nil
		})
		if err == nil {
			return []msg.Directive{msg.Send(q.From, msg.M(HdrSMRCatchup, SMRCatchup{Delivers: ds}))}
		}
	}
	// The journal no longer reaches back to After (or this replica is
	// volatile): a full state transfer is needed. Under dynamic
	// membership only the deterministic proposer pushes it — the
	// requester asks every peer, and concurrent transfers from several
	// of them would interleave their batches at the receiver. The other
	// peers stay silent; the requester's delayed retry covers a lost
	// push.
	if r.view != nil && r.slf != member.Proposer(r.view.Current(), q.From) {
		return nil
	}
	return r.pushSnapshot(q.From)
}

// onSMRCatchup applies a peer-served delta: contiguous slots are
// journaled and executed (quietly — the live replicas already answered
// these clients), out-of-order ones are parked.
func (r *SMRReplica) onSMRCatchup(c SMRCatchup) []msg.Directive {
	if r.stable == nil || !r.active {
		return nil
	}
	ds := append([]broadcast.Deliver(nil), c.Delivers...)
	sort.Slice(ds, func(i, j int) bool { return ds[i].Slot < ds[j].Slot })
	var outs []msg.Directive
	for _, d := range ds {
		switch {
		case d.Slot <= r.lastSlot:
			// already applied
		case d.Slot == r.lastSlot+1:
			outs = append(outs, r.journalAndApply(d, true)...)
		default:
			r.pending[d.Slot] = d
		}
	}
	return append(outs, r.drainPending()...)
}

// dropTxResults filters the client replies out of a directive list.
func dropTxResults(outs []msg.Directive) []msg.Directive {
	kept := outs[:0]
	for _, o := range outs {
		if o.M.Hdr != HdrTxResult {
			kept = append(kept, o)
		}
	}
	return kept
}
