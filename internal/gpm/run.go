package gpm

import (
	"container/heap"
	"fmt"
	"time"

	"shadowdb/internal/msg"
)

// Runner executes a System deterministically in virtual time. It is the
// reference executor used by tests, the verifier, and the examples; the
// discrete-event simulator (package des) and the real transports (package
// runtime) host the same Process values in richer environments.
//
// Delivery model: directives become pending deliveries ordered by virtual
// time (injection time + delay), with FIFO tie-breaking by sequence
// number. This makes runs reproducible, which both the model checker and
// the refinement checker rely on.
type Runner struct {
	procs map[msg.Loc]Process
	now   time.Duration
	seq   int
	queue deliveryHeap
	trace []TraceEntry
	// DropUnknown controls what happens to messages addressed to locations
	// the runner does not host: true drops them silently (the default
	// network behaviour), false makes Run return an error.
	DropUnknown bool
	// OnDeliver, if non-nil, is invoked after each delivery with the
	// resulting outputs. Used by tests and the refinement checker.
	OnDeliver func(e TraceEntry)
}

// TraceEntry records one delivery: the event (location + message) and the
// outputs the process produced for it. CausedBy is the trace index of the
// event whose output enqueued this delivery, or -1 for injected messages;
// it gives the verifier the causal order of the Logic of Events.
type TraceEntry struct {
	At       time.Duration
	Loc      msg.Loc
	In       msg.Msg
	Outs     []msg.Directive
	CausedBy int
}

type delivery struct {
	at       time.Duration
	seq      int
	to       msg.Loc
	m        msg.Msg
	causedBy int
}

type deliveryHeap []delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)   { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any     { old := *h; n := len(old); d := old[n-1]; *h = old[:n-1]; return d }

// NewRunner spawns the system's processes and returns a runner ready for
// injection.
func NewRunner(s System) *Runner {
	return &Runner{procs: s.Spawn(), DropUnknown: true}
}

// Now returns the current virtual time.
func (r *Runner) Now() time.Duration { return r.now }

// Trace returns the deliveries executed so far, in order.
func (r *Runner) Trace() []TraceEntry { return r.trace }

// Process returns the current process at a location (nil if not hosted).
func (r *Runner) Process(l msg.Loc) Process { return r.procs[l] }

// Replace swaps the process at a location; Replace(l, Halt()) crashes it.
func (r *Runner) Replace(l msg.Loc, p Process) { r.procs[l] = p }

// Inject schedules an external message for delivery at the current virtual
// time.
func (r *Runner) Inject(to msg.Loc, m msg.Msg) {
	r.InjectAfter(0, to, m)
}

// InjectAfter schedules an external message for delivery after a delay of
// virtual time, letting tests stage fault injections between protocol
// phases.
func (r *Runner) InjectAfter(d time.Duration, to msg.Loc, m msg.Msg) {
	heap.Push(&r.queue, delivery{at: r.now + d, seq: r.seq, to: to, m: m, causedBy: -1})
	r.seq++
}

// Pending reports how many deliveries are queued.
func (r *Runner) Pending() int { return r.queue.Len() }

// StepOne delivers the single earliest pending message. It reports whether
// a delivery happened.
func (r *Runner) StepOne() (bool, error) {
	for r.queue.Len() > 0 {
		d := heap.Pop(&r.queue).(delivery)
		r.now = d.at
		p, ok := r.procs[d.to]
		if !ok {
			if r.DropUnknown {
				continue
			}
			return false, fmt.Errorf("gpm: delivery to unknown location %q", d.to)
		}
		next, outs := p.Step(d.m)
		r.procs[d.to] = next
		eventIdx := len(r.trace)
		for _, out := range outs {
			heap.Push(&r.queue, delivery{
				at: r.now + out.Delay, seq: r.seq, to: out.Dest, m: out.M, causedBy: eventIdx,
			})
			r.seq++
		}
		entry := TraceEntry{At: r.now, Loc: d.to, In: d.m, Outs: outs, CausedBy: d.causedBy}
		r.trace = append(r.trace, entry)
		if r.OnDeliver != nil {
			r.OnDeliver(entry)
		}
		return true, nil
	}
	return false, nil
}

// Run delivers pending messages until the queue drains or maxSteps
// deliveries have happened. It returns the number of deliveries executed.
func (r *Runner) Run(maxSteps int) (int, error) {
	steps := 0
	for steps < maxSteps {
		ok, err := r.StepOne()
		if err != nil {
			return steps, err
		}
		if !ok {
			return steps, nil
		}
		steps++
	}
	return steps, nil
}

// RunUntil delivers pending messages until pred returns true after some
// delivery, the queue drains, or maxSteps is exhausted. It reports whether
// pred was satisfied.
func (r *Runner) RunUntil(maxSteps int, pred func() bool) (bool, error) {
	if pred() {
		return true, nil
	}
	for steps := 0; steps < maxSteps; steps++ {
		ok, err := r.StepOne()
		if err != nil {
			return false, err
		}
		if !ok {
			return pred(), nil
		}
		if pred() {
			return true, nil
		}
	}
	return pred(), nil
}
