package gpm

import (
	"testing"
	"time"

	"shadowdb/internal/msg"
)

// counter returns a process that counts "inc" messages and, on "get",
// replies to the body location with the count.
func counter() Process {
	var rec func(n int) StepFunc
	rec = func(n int) StepFunc {
		return func(in msg.Msg) (Process, []msg.Directive) {
			switch in.Hdr {
			case "inc":
				return rec(n + 1), nil
			case "get":
				dest := in.Body.(msg.Loc)
				return rec(n), []msg.Directive{msg.Send(dest, msg.M("count", n))}
			default:
				return rec(n), nil
			}
		}
	}
	return rec(0)
}

// sink records every message it receives.
func sink(got *[]msg.Msg) Process {
	var rec StepFunc
	rec = func(in msg.Msg) (Process, []msg.Directive) {
		*got = append(*got, in)
		return rec, nil
	}
	return rec
}

func TestHalt(t *testing.T) {
	h := Halt()
	if !h.Halted() {
		t.Fatal("Halt().Halted() = false")
	}
	next, outs := h.Step(msg.M("x", nil))
	if !next.Halted() || len(outs) != 0 {
		t.Error("halted process must stay halted and silent")
	}
}

func TestStepFuncNotHalted(t *testing.T) {
	p := StepFunc(func(in msg.Msg) (Process, []msg.Directive) { return Halt(), nil })
	if p.Halted() {
		t.Error("StepFunc.Halted() = true, want false")
	}
}

func TestSystemSpawn(t *testing.T) {
	s := System{
		Gen:  func(slf msg.Loc) Process { return counter() },
		Locs: []msg.Loc{"a", "b"},
	}
	ps := s.Spawn()
	if len(ps) != 2 {
		t.Fatalf("spawned %d processes, want 2", len(ps))
	}
	for _, l := range s.Locs {
		if ps[l] == nil {
			t.Errorf("no process at %q", l)
		}
	}
}

func TestRunnerCounting(t *testing.T) {
	var got []msg.Msg
	s := System{
		Gen: func(slf msg.Loc) Process {
			if slf == "ctr" {
				return counter()
			}
			return sink(&got)
		},
		Locs: []msg.Loc{"ctr", "obs"},
	}
	r := NewRunner(s)
	for i := 0; i < 5; i++ {
		r.Inject("ctr", msg.M("inc", nil))
	}
	r.Inject("ctr", msg.M("get", msg.Loc("obs")))
	if _, err := r.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("observer got %d messages, want 1", len(got))
	}
	if got[0].Hdr != "count" || got[0].Body != 5 {
		t.Errorf("observer got %v, want count(5)", got[0])
	}
}

func TestRunnerFIFOOrder(t *testing.T) {
	var got []msg.Msg
	s := System{
		Gen:  func(msg.Loc) Process { return sink(&got) },
		Locs: []msg.Loc{"a"},
	}
	r := NewRunner(s)
	for i := 0; i < 10; i++ {
		r.Inject("a", msg.M("n", i))
	}
	if _, err := r.Run(100); err != nil {
		t.Fatal(err)
	}
	for i, m := range got {
		if m.Body != i {
			t.Fatalf("delivery %d carried %v, want %d (FIFO violated)", i, m.Body, i)
		}
	}
}

func TestRunnerDelayedDelivery(t *testing.T) {
	// A process that echoes with a delay proportional to the body.
	echo := func() Process {
		var rec StepFunc
		rec = func(in msg.Msg) (Process, []msg.Directive) {
			if in.Hdr == "ping" {
				d := in.Body.(time.Duration)
				return rec, []msg.Directive{msg.SendAfter(d, "obs", msg.M("pong", d))}
			}
			return rec, nil
		}
		return rec
	}
	var got []msg.Msg
	s := System{
		Gen: func(slf msg.Loc) Process {
			if slf == "echo" {
				return echo()
			}
			return sink(&got)
		},
		Locs: []msg.Loc{"echo", "obs"},
	}
	r := NewRunner(s)
	// Inject long delay first; short delay must still be delivered first.
	r.Inject("echo", msg.M("ping", 5*time.Second))
	r.Inject("echo", msg.M("ping", 1*time.Second))
	if _, err := r.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d messages, want 2", len(got))
	}
	if got[0].Body != 1*time.Second || got[1].Body != 5*time.Second {
		t.Errorf("delayed messages out of order: %v", got)
	}
	if r.Now() != 5*time.Second {
		t.Errorf("virtual clock = %v, want 5s", r.Now())
	}
}

func TestRunnerUnknownLocation(t *testing.T) {
	s := System{Gen: func(msg.Loc) Process { return Halt() }, Locs: []msg.Loc{"a"}}

	t.Run("dropped by default", func(t *testing.T) {
		r := NewRunner(s)
		r.Inject("ghost", msg.M("x", nil))
		if _, err := r.Run(10); err != nil {
			t.Errorf("Run: %v, want nil (drop)", err)
		}
	})
	t.Run("error when strict", func(t *testing.T) {
		r := NewRunner(s)
		r.DropUnknown = false
		r.Inject("ghost", msg.M("x", nil))
		if _, err := r.Run(10); err == nil {
			t.Error("Run succeeded, want unknown-location error")
		}
	})
}

func TestRunnerTraceAndCallback(t *testing.T) {
	var cb int
	s := System{Gen: func(msg.Loc) Process { return counter() }, Locs: []msg.Loc{"a"}}
	r := NewRunner(s)
	r.OnDeliver = func(TraceEntry) { cb++ }
	r.Inject("a", msg.M("inc", nil))
	r.Inject("a", msg.M("inc", nil))
	n, err := r.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || cb != 2 || len(r.Trace()) != 2 {
		t.Errorf("n=%d cb=%d trace=%d, want 2 each", n, cb, len(r.Trace()))
	}
	if r.Trace()[0].Loc != "a" || r.Trace()[0].In.Hdr != "inc" {
		t.Errorf("trace entry 0 = %+v", r.Trace()[0])
	}
}

func TestRunUntil(t *testing.T) {
	var got []msg.Msg
	s := System{Gen: func(msg.Loc) Process { return sink(&got) }, Locs: []msg.Loc{"a"}}
	r := NewRunner(s)
	for i := 0; i < 10; i++ {
		r.Inject("a", msg.M("n", i))
	}
	ok, err := r.RunUntil(100, func() bool { return len(got) == 3 })
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("RunUntil did not satisfy predicate")
	}
	if len(got) != 3 {
		t.Errorf("stopped after %d deliveries, want 3", len(got))
	}
	if r.Pending() != 7 {
		t.Errorf("pending = %d, want 7", r.Pending())
	}
}

func TestRunMaxSteps(t *testing.T) {
	// A self-perpetuating process: every tick sends itself another tick.
	loop := func(slf msg.Loc) Process {
		var rec StepFunc
		rec = func(in msg.Msg) (Process, []msg.Directive) {
			return rec, []msg.Directive{msg.Send(slf, msg.M("tick", nil))}
		}
		return rec
	}
	s := System{Gen: loop, Locs: []msg.Loc{"a"}}
	r := NewRunner(s)
	r.Inject("a", msg.M("tick", nil))
	n, err := r.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("Run executed %d steps, want exactly 50", n)
	}
}
