// Package gpm implements the General Process Model of the paper: a process
// is a (conceptually tail-recursive) function that consumes one input
// message and computes a replacement process together with a bag of output
// directives.
//
// This is the operational half of the paper's methodology: EventML/LoE
// specifications (package loe) compile into GPM processes, which are then
// either executed natively ("compiled" mode, the analogue of the paper's
// Lisp translation) or compiled further into λ-terms and evaluated by the
// term interpreter in package interp ("interpreted" mode).
package gpm

import (
	"shadowdb/internal/msg"
)

// Process is one step of a GPM process: given an input message it returns
// the process that replaces it and the directives to emit. Mirrors the
// optimized form of Fig. 7 in the paper:
//
//	let rec R(s) = run (λm. ... <R(s'), out>)
type Process interface {
	// Step consumes one input and returns the replacement process plus
	// output directives. Implementations must be deterministic: the model
	// checker replays steps and compares outputs.
	Step(in msg.Msg) (Process, []msg.Directive)
	// Halted reports whether this process ignores all further input.
	Halted() bool
}

// StepFunc adapts a function to the Process interface. The function itself
// returns the next step function, keeping the tail-recursive flavour of the
// model.
type StepFunc func(in msg.Msg) (Process, []msg.Directive)

var _ Process = (StepFunc)(nil)

// Step implements Process.
func (f StepFunc) Step(in msg.Msg) (Process, []msg.Directive) { return f(in) }

// Halted implements Process. A live step function never reports halted.
func (f StepFunc) Halted() bool { return false }

type haltedProcess struct{}

var _ Process = haltedProcess{}

func (haltedProcess) Step(msg.Msg) (Process, []msg.Directive) { return haltedProcess{}, nil }
func (haltedProcess) Halted() bool                            { return true }

// Halt returns the halted process: it consumes every input and produces
// nothing. Generators return it for locations outside the system (Fig. 7,
// line 10 of the paper).
func Halt() Process { return haltedProcess{} }

// Generator is a distributed-system generator: it takes a location slf and
// returns the process meant to run at that location (Fig. 7, line 2).
type Generator func(slf msg.Loc) Process

// System pairs a generator with the locations it populates; it is the
// runnable form of an EventML "main Handler @ locs" declaration.
type System struct {
	// Gen produces the process for each location.
	Gen Generator
	// Locs is the set of populated locations.
	Locs []msg.Loc
}

// Spawn instantiates the process for every location in the system.
func (s System) Spawn() map[msg.Loc]Process {
	ps := make(map[msg.Loc]Process, len(s.Locs))
	for _, l := range s.Locs {
		ps[l] = s.Gen(l)
	}
	return ps
}
