package member

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"shadowdb/internal/msg"
)

// Op is a membership operation.
type Op string

// The membership operations.
const (
	AddReplica     Op = "add-replica"
	RemoveReplica  Op = "remove-replica"
	AddAcceptor    Op = "add-acceptor"
	RemoveAcceptor Op = "remove-acceptor"
)

// Command is one membership change, carried through the broadcast
// order as an opaque payload (prefix "mbr|", disjoint from the "tx|"
// and "add|" payloads the SMR layer already routes on). Addr is the
// joiner's network address for live deployments — ordering it with the
// command means every node learns the route exactly when it learns the
// member; the simulator ignores it.
type Command struct {
	Op   Op
	Node msg.Loc
	Addr string
}

// cmdPrefix tags membership payloads in the broadcast order.
const cmdPrefix = "mbr|"

// EncodeCommand renders c as a broadcast payload.
func EncodeCommand(c Command) []byte {
	return []byte(cmdPrefix + string(c.Op) + "|" + string(c.Node) + "|" + c.Addr)
}

// DecodeCommand parses a broadcast payload; ok is false when the
// payload is not a membership command.
func DecodeCommand(b []byte) (Command, bool) {
	s := string(b)
	if !strings.HasPrefix(s, cmdPrefix) {
		return Command{}, false
	}
	parts := strings.SplitN(s[len(cmdPrefix):], "|", 3)
	if len(parts) != 3 {
		return Command{}, false
	}
	c := Command{Op: Op(parts[0]), Node: msg.Loc(parts[1]), Addr: parts[2]}
	switch c.Op {
	case AddReplica, RemoveReplica, AddAcceptor, RemoveAcceptor:
	default:
		return Command{}, false
	}
	if c.Node == "" {
		return Command{}, false
	}
	return c, true
}

// Config is one configuration epoch: the broadcast/acceptor membership
// and the SMR replica set, with the slots at which each facet takes
// effect. Bcast[0] is the sequencer; derivation never removes it, so
// the slot numbering authority is stable across every epoch.
type Config struct {
	// Epoch numbers configurations densely from 0.
	Epoch int `json:"epoch"`
	// ActivateAt is the first Synod instance whose quorums are drawn
	// from this epoch's Bcast set.
	ActivateAt int `json:"activate_at"`
	// ReplicasFrom is the first slot whose delivery fan-out targets
	// this epoch's Replicas.
	ReplicasFrom int `json:"replicas_from"`
	// Bcast is the broadcast service membership (acceptors/learners).
	Bcast []msg.Loc `json:"bcast"`
	// Replicas is the SMR learner set.
	Replicas []msg.Loc `json:"replicas"`
}

// HasAcceptor reports whether l is in the epoch's broadcast set.
func (c Config) HasAcceptor(l msg.Loc) bool { return has(c.Bcast, l) }

// HasReplica reports whether l is in the epoch's replica set.
func (c Config) HasReplica(l msg.Loc) bool { return has(c.Replicas, l) }

func has(ls []msg.Loc, l msg.Loc) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// Fingerprint canonically renders the epoch for conflict detection:
// two nodes deriving different fingerprints for the same epoch number
// have diverged. Member order is part of the fingerprint — Bcast[0]
// names the sequencer and Replicas[0] the snapshot proposer, so order
// disagreement is real disagreement.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("e%d@a%d,r%d|b:%s|r:%s",
		c.Epoch, c.ActivateAt, c.ReplicasFrom, locList(c.Bcast), locList(c.Replicas))
}

func locList(ls []msg.Loc) string {
	ss := make([]string, len(ls))
	for i, l := range ls {
		ss[i] = string(l)
	}
	return strings.Join(ss, ",")
}

// Proposer picks the replica that pushes the bootstrap snapshot to a
// joiner: the first replica of the pre-join epoch that is not the
// joiner itself. Every replica computes the same answer from the same
// delivered prefix, so exactly one pushes.
func Proposer(prev Config, joiner msg.Loc) msg.Loc {
	for _, l := range prev.Replicas {
		if l != joiner {
			return l
		}
	}
	return ""
}

// derive computes the successor epoch for cmd ordered at slot, or ok
// false when the command is a no-op under the current epoch (adding a
// present member, removing an absent or last or sequencer member).
// It is a pure function: every node derives the same schedule.
func derive(last Config, cmd Command, slot, alpha int) (Config, bool) {
	var bcast, replicas []msg.Loc
	switch cmd.Op {
	case AddAcceptor:
		if last.HasAcceptor(cmd.Node) {
			return Config{}, false
		}
		bcast = append(append([]msg.Loc{}, last.Bcast...), cmd.Node)
		replicas = last.Replicas
	case RemoveAcceptor:
		// The sequencer (Bcast[0]) cannot be removed: it is the slot
		// numbering authority. Handing it over is a separate protocol.
		if !last.HasAcceptor(cmd.Node) || len(last.Bcast) <= 1 || cmd.Node == last.Bcast[0] {
			return Config{}, false
		}
		bcast = remove(last.Bcast, cmd.Node)
		replicas = last.Replicas
	case AddReplica:
		if last.HasReplica(cmd.Node) {
			return Config{}, false
		}
		bcast = last.Bcast
		replicas = append(append([]msg.Loc{}, last.Replicas...), cmd.Node)
	case RemoveReplica:
		if !last.HasReplica(cmd.Node) || len(last.Replicas) <= 1 {
			return Config{}, false
		}
		bcast = last.Bcast
		replicas = remove(last.Replicas, cmd.Node)
	default:
		return Config{}, false
	}
	next := Config{
		Epoch:        last.Epoch + 1,
		ActivateAt:   slot + alpha,
		ReplicasFrom: slot + 1,
		Bcast:        bcast,
		Replicas:     replicas,
	}
	// Epochs activate in order even if commands land closer together
	// than alpha: a later command's epoch never activates at or before
	// an earlier command's.
	if next.ActivateAt <= last.ActivateAt {
		next.ActivateAt = last.ActivateAt + 1
	}
	if next.ReplicasFrom <= last.ReplicasFrom {
		next.ReplicasFrom = last.ReplicasFrom + 1
	}
	return next, true
}

func remove(ls []msg.Loc, l msg.Loc) []msg.Loc {
	out := make([]msg.Loc, 0, len(ls))
	for _, x := range ls {
		if x != l {
			out = append(out, x)
		}
	}
	return out
}

// View is the runtime epoch schedule: the ascending list of derived
// configurations plus the activation lag. One View may be shared by
// several co-located components (sequencer, replica, admin handler) —
// Apply is idempotent per slot, so whoever delivers a slot first
// applies its command once and everyone observes the result.
type View struct {
	mu      sync.Mutex
	alpha   int
	epochs  []Config
	applied map[int]bool
	// joined records, per location, the slot at which it first became
	// a member (acceptors: ActivateAt; replicas: ReplicasFrom), or 0
	// for charter members. A joining broadcast node baselines its
	// delivery frontier here instead of at slot 0.
	joined  map[msg.Loc]int
	onApply []func(Command, Config)
}

// NewView starts a schedule at the initial configuration. alpha is the
// acceptor activation lag in slots; it must exceed the consensus
// pipeline window (twice the window leaves margin for out-of-order
// decisions) so no instance is proposed under a quorum it predates.
func NewView(initial Config, alpha int) *View {
	if alpha < 1 {
		alpha = 1
	}
	initial.Epoch = 0
	initial.ActivateAt = 0
	initial.ReplicasFrom = 0
	v := &View{
		alpha:   alpha,
		epochs:  []Config{initial},
		applied: map[int]bool{},
		joined:  map[msg.Loc]int{},
	}
	return v
}

// Alpha returns the acceptor activation lag.
func (v *View) Alpha() int { return v.alpha }

// Current returns the latest derived epoch (which may not govern any
// slot yet if its activation lies in the future).
func (v *View) Current() Config {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epochs[len(v.epochs)-1]
}

// Epochs returns the full derived schedule, ascending.
func (v *View) Epochs() []Config {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]Config{}, v.epochs...)
}

// Apply folds a membership command ordered at slot into the schedule.
// It returns the configuration now current and whether this call
// created a new epoch (false on duplicate slots — several co-located
// components may deliver the same slot — and on no-op commands).
func (v *View) Apply(cmd Command, slot int) (Config, bool) {
	v.mu.Lock()
	if v.applied[slot] {
		cfg := v.epochs[len(v.epochs)-1]
		v.mu.Unlock()
		return cfg, false
	}
	v.applied[slot] = true
	last := v.epochs[len(v.epochs)-1]
	next, ok := derive(last, cmd, slot, v.alpha)
	if !ok {
		v.mu.Unlock()
		return last, false
	}
	v.epochs = append(v.epochs, next)
	switch cmd.Op {
	case AddAcceptor:
		if _, was := v.joined[cmd.Node]; !was {
			v.joined[cmd.Node] = next.ActivateAt
		}
	case AddReplica:
		if _, was := v.joined[cmd.Node]; !was {
			v.joined[cmd.Node] = next.ReplicasFrom
		}
	}
	hooks := append([]func(Command, Config){}, v.onApply...)
	v.mu.Unlock()
	for _, h := range hooks {
		h(cmd, next)
	}
	return next, true
}

// OnApply registers a hook invoked after each successful epoch
// derivation (live deployments use it to learn joiner addresses).
func (v *View) OnApply(h func(Command, Config)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.onApply = append(v.onApply, h)
}

// At returns the epoch whose replica fan-out governs slot.
func (v *View) At(slot int) Config {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.findLocked(slot, func(c Config) int { return c.ReplicasFrom })
}

// EpochOf returns the epoch whose acceptor set governs instance inst.
func (v *View) EpochOf(inst int) Config {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.findLocked(inst, func(c Config) int { return c.ActivateAt })
}

func (v *View) findLocked(slot int, key func(Config) int) Config {
	// Epochs are few and ascending; scan from the newest.
	i := sort.Search(len(v.epochs), func(i int) bool { return key(v.epochs[i]) > slot })
	if i == 0 {
		return v.epochs[0]
	}
	return v.epochs[i-1]
}

// AcceptorsFor resolves the Synod acceptor set for instance inst; a
// negative inst asks for the newest set (scouts electing for the whole
// future). This is the synod.Config.AcceptorsFor hook.
func (v *View) AcceptorsFor(inst int) []msg.Loc {
	if inst < 0 {
		return v.Current().Bcast
	}
	return v.EpochOf(inst).Bcast
}

// Learners resolves the Decide fan-out: the newest broadcast set, so
// joining sequencers start learning the moment their epoch is derived.
// This is the synod.Config.LearnersFor hook.
func (v *View) Learners() []msg.Loc { return v.Current().Bcast }

// BaselineOf returns the slot at which loc became a member (0 for
// charter members): a joining broadcast node starts its contiguous
// delivery frontier there instead of waiting forever for slot 0.
func (v *View) BaselineOf(loc msg.Loc) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.joined[loc]
}

// Joined returns a copy of the membership baselines (see BaselineOf),
// for inclusion in snapshots and state transfers.
func (v *View) Joined() map[msg.Loc]int {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[msg.Loc]int, len(v.joined))
	for l, s := range v.joined {
		out[l] = s
	}
	return out
}

// Adopt merges a transferred epoch schedule — from a durable snapshot
// or a state transfer — into this view. Epochs are derived by one
// deterministic function from one total order, so any two schedules
// agree on their common prefix; Adopt appends the epochs this view has
// not derived yet and records baselines it has not seen. Commands the
// adopting node later delivers for slots the schedule already covers
// are no-ops (derive refuses, e.g., removing an already-absent member),
// so Adopt is safe against replayed tails.
func (v *View) Adopt(epochs []Config, joined map[msg.Loc]int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, c := range epochs {
		if c.Epoch > v.epochs[len(v.epochs)-1].Epoch {
			v.epochs = append(v.epochs, c)
		}
	}
	for l, s := range joined {
		if _, ok := v.joined[l]; !ok {
			v.joined[l] = s
		}
	}
}
