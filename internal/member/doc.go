// Package member implements consensus-driven dynamic membership as
// ordered configuration epochs. Add/remove commands for replicas and
// acceptors are not a side channel: they are proposed through the
// total-order broadcast like any transaction, and every correct node
// derives the identical epoch schedule from the identical delivered
// prefix. Each epoch activates at a well-defined slot:
//
//   - acceptor-set changes (Synod quorums, sequencer learner fan-in)
//     govern instances >= ActivateAt = command slot + alpha, where
//     alpha exceeds the pipeline window so instances proposed
//     concurrently with the command stay under the old quorum;
//   - replica-set changes (delivery fan-out, SMR learner sets) take
//     effect at ReplicasFrom = command slot + 1 — replicas are not
//     part of any quorum, and a joiner must see every slot after the
//     snapshot that bootstraps it, so there is nothing to delay.
//
// The View is the runtime home of the schedule: broadcast sequencers
// resolve delivery targets per slot through it, Synod resolves
// acceptor sets per instance through it, SMR replicas refresh their
// catch-up peer lists from it, the lease protocol (core, DESIGN.md
// §13) defines "natural holder of epoch e" as Replicas[0] of e's
// config, and the online checker derives its own shadow copy per node
// to certify that no two nodes ever disagree on what an epoch means.
//
// # Invariants
//
//   - Determinism: the schedule is a pure function of the delivered
//     command prefix and alpha. Two views that applied the same
//     commands at the same slots hold byte-identical []Config — this
//     is what Adopt leans on when merging a transferred schedule: the
//     common prefix cannot conflict, only the tail can extend.
//   - Monotonicity: epochs only append, in increasing Epoch order with
//     increasing activation slots; a config is never edited after
//     derivation. At(slot) is therefore well-defined for any slot.
//   - Idempotence: Apply(cmd, slot) is a no-op for an already-applied
//     slot, so journal replay and live delivery can both feed the same
//     view; derivation refuses no-op commands (adding a member twice)
//     rather than minting an identical epoch.
//   - Durability is the caller's: the schedule travels inside SMR
//     snapshots and state-transfer payloads (core.smrSnapshot /
//     core.SnapEnd), because a compacted membership command is never
//     replayed — a restarted node that lost the schedule would grant
//     leases to deposed holders.
//
// # Concurrency
//
// View is safe for concurrent use: one mutex guards the schedule and
// the joined map, and configs are immutable after derivation, so the
// values accessors hand out never change underneath the caller.
// OnApply hooks are invoked after the lock is released (re-entrant
// calls into the View are safe) but still in schedule order, because
// Apply is called in slot order. Everything else in the package
// (Command encode/decode, Config) is immutable value data.
package member
