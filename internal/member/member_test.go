package member

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"shadowdb/internal/msg"
)

func initial() Config {
	return Config{
		Bcast:    []msg.Loc{"b1", "b2", "b3"},
		Replicas: []msg.Loc{"r1", "r2", "r3"},
	}
}

func TestCommandRoundTrip(t *testing.T) {
	for _, c := range []Command{
		{Op: AddReplica, Node: "r4", Addr: "127.0.0.1:9104"},
		{Op: RemoveAcceptor, Node: "b2"},
		{Op: AddAcceptor, Node: "b4", Addr: "h:1"},
		{Op: RemoveReplica, Node: "r2"},
	} {
		got, ok := DecodeCommand(EncodeCommand(c))
		if !ok || got != c {
			t.Fatalf("round trip %+v -> %+v ok=%v", c, got, ok)
		}
	}
	for _, raw := range [][]byte{
		nil, []byte("tx|whatever"), []byte("mbr|"), []byte("mbr|bogus|n|"),
		[]byte("mbr|add-replica||"), []byte("mbr|add-replica|r4"),
	} {
		if _, ok := DecodeCommand(raw); ok {
			t.Fatalf("decoded invalid payload %q", raw)
		}
	}
}

func TestViewEpochDerivation(t *testing.T) {
	v := NewView(initial(), 8)
	cfg, ok := v.Apply(Command{Op: AddAcceptor, Node: "b4"}, 100)
	if !ok || cfg.Epoch != 1 {
		t.Fatalf("add-acceptor: %+v ok=%v", cfg, ok)
	}
	if cfg.ActivateAt != 108 || cfg.ReplicasFrom != 101 {
		t.Fatalf("activation slots: %+v", cfg)
	}
	if !cfg.HasAcceptor("b4") || cfg.HasReplica("b4") {
		t.Fatalf("membership after add: %+v", cfg)
	}
	// Duplicate delivery of the same slot by a co-located component.
	if _, ok := v.Apply(Command{Op: AddAcceptor, Node: "b4"}, 100); ok {
		t.Fatal("duplicate slot derived a second epoch")
	}
	// Replica join: effective next slot, not alpha-delayed.
	cfg, ok = v.Apply(Command{Op: AddReplica, Node: "r4"}, 120)
	if !ok || cfg.Epoch != 2 || cfg.ReplicasFrom != 121 || cfg.ActivateAt != 128 {
		t.Fatalf("add-replica: %+v ok=%v", cfg, ok)
	}
	// Schedule lookups: acceptors switch at ActivateAt, replicas at
	// ReplicasFrom.
	if got := v.EpochOf(107).Epoch; got != 0 {
		t.Fatalf("inst 107 epoch %d", got)
	}
	if got := v.EpochOf(108).Epoch; got != 1 {
		t.Fatalf("inst 108 epoch %d", got)
	}
	if got := v.At(120).Epoch; got != 1 {
		t.Fatalf("slot 120 epoch %d", got)
	}
	if got := v.At(121).Epoch; got != 2 {
		t.Fatalf("slot 121 epoch %d", got)
	}
	if len(v.AcceptorsFor(-1)) != 4 || len(v.AcceptorsFor(0)) != 3 {
		t.Fatal("AcceptorsFor mixing epochs")
	}
	if v.BaselineOf("b4") != 108 || v.BaselineOf("r4") != 121 || v.BaselineOf("b1") != 0 {
		t.Fatalf("baselines: b4=%d r4=%d b1=%d", v.BaselineOf("b4"), v.BaselineOf("r4"), v.BaselineOf("b1"))
	}
}

func TestViewNoOpCommands(t *testing.T) {
	v := NewView(initial(), 4)
	cases := []Command{
		{Op: AddAcceptor, Node: "b2"},    // already present
		{Op: AddReplica, Node: "r1"},     // already present
		{Op: RemoveAcceptor, Node: "b9"}, // absent
		{Op: RemoveReplica, Node: "r9"},  // absent
		{Op: RemoveAcceptor, Node: "b1"}, // the sequencer
	}
	for i, c := range cases {
		if cfg, ok := v.Apply(c, 10+i); ok {
			t.Fatalf("no-op %+v derived epoch %+v", c, cfg)
		}
	}
	if got := v.Current().Epoch; got != 0 {
		t.Fatalf("epoch after no-ops: %d", got)
	}
}

func TestViewActivationMonotonic(t *testing.T) {
	v := NewView(initial(), 8)
	a, _ := v.Apply(Command{Op: AddAcceptor, Node: "b4"}, 10)
	b, _ := v.Apply(Command{Op: AddAcceptor, Node: "b5"}, 11)
	if b.ActivateAt <= a.ActivateAt || b.ReplicasFrom <= a.ReplicasFrom {
		t.Fatalf("epochs not strictly ordered: %+v then %+v", a, b)
	}
	// Same schedule on an independent view: derivation is pure.
	w := NewView(initial(), 8)
	wa, _ := w.Apply(Command{Op: AddAcceptor, Node: "b4"}, 10)
	wb, _ := w.Apply(Command{Op: AddAcceptor, Node: "b5"}, 11)
	if wa.Fingerprint() != a.Fingerprint() || wb.Fingerprint() != b.Fingerprint() {
		t.Fatal("derivation differs across views")
	}
}

func TestViewRemoveAndProposer(t *testing.T) {
	v := NewView(initial(), 4)
	prev := v.Current()
	cfg, ok := v.Apply(Command{Op: AddReplica, Node: "r4"}, 50)
	if !ok {
		t.Fatal("add failed")
	}
	if got := Proposer(prev, "r4"); got != "r1" {
		t.Fatalf("proposer %q", got)
	}
	cfg, ok = v.Apply(Command{Op: RemoveReplica, Node: "r2"}, 60)
	if !ok || cfg.HasReplica("r2") {
		t.Fatalf("remove-replica: %+v", cfg)
	}
	if want := []msg.Loc{"r1", "r3", "r4"}; !reflect.DeepEqual(cfg.Replicas, want) {
		t.Fatalf("replica order after remove: %v", cfg.Replicas)
	}
	cfg, ok = v.Apply(Command{Op: RemoveAcceptor, Node: "b3"}, 70)
	if !ok || cfg.HasAcceptor("b3") || cfg.Bcast[0] != "b1" {
		t.Fatalf("remove-acceptor: %+v", cfg)
	}
}

func TestOnApplyHook(t *testing.T) {
	v := NewView(initial(), 4)
	var got []Command
	v.OnApply(func(c Command, _ Config) { got = append(got, c) })
	v.Apply(Command{Op: AddReplica, Node: "r4", Addr: "a:1"}, 5)
	v.Apply(Command{Op: AddReplica, Node: "r4", Addr: "a:1"}, 6) // no-op: present
	if len(got) != 1 || got[0].Addr != "a:1" {
		t.Fatalf("hook calls: %+v", got)
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	top := Topology{Epoch: 3, Nodes: map[string]string{"b1": "h:1", "r1": "h:2"}}
	if err := top.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, top) {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Directory()[msg.Loc("b1")] != "h:1" {
		t.Fatal("directory")
	}
	if ids := got.IDs(); !reflect.DeepEqual(ids, []string{"b1", "r1"}) {
		t.Fatalf("ids: %v", ids)
	}
}

func TestTopologyValidation(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"unknown-field": `{"epoch":1,"nodes":{"b1":"h:1"},"extra":true}`,
		"trailing":      `{"epoch":1,"nodes":{"b1":"h:1"}}{"again":1}`,
		"no-nodes":      `{"epoch":1,"nodes":{}}`,
		"neg-epoch":     `{"epoch":-1,"nodes":{"b1":"h:1"}}`,
		"empty-addr":    `{"epoch":1,"nodes":{"b1":""}}`,
	} {
		p := filepath.Join(dir, name+".json")
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadTopology(p); err == nil {
			t.Fatalf("%s: accepted invalid topology", name)
		}
	}
}
