package member

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"shadowdb/internal/msg"
)

// Topology is the epoch-stamped cluster file that replaces the static
// -cluster flag: a node id -> address directory plus the epoch it was
// written at, so an operator (and the join/leave verbs) can tell which
// generation of the cluster a file describes. Roles follow the id
// prefix convention the binaries already use (b* broadcast, r*
// replica, shard<k>-*/router for the sharded roles).
type Topology struct {
	Epoch int               `json:"epoch"`
	Nodes map[string]string `json:"nodes"`
}

// LoadTopology reads and validates an epoch-stamped topology file.
func LoadTopology(path string) (Topology, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, err
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("topology %s: %w", path, err)
	}
	if dec.More() {
		return Topology{}, fmt.Errorf("topology %s: trailing data after document", path)
	}
	if t.Epoch < 0 {
		return Topology{}, fmt.Errorf("topology %s: negative epoch %d", path, t.Epoch)
	}
	if len(t.Nodes) == 0 {
		return Topology{}, fmt.Errorf("topology %s: no nodes", path)
	}
	for id, addr := range t.Nodes {
		if id == "" || addr == "" {
			return Topology{}, fmt.Errorf("topology %s: empty id or address (%q=%q)", path, id, addr)
		}
	}
	return t, nil
}

// Save writes the topology atomically (tmp + rename), pretty-printed
// with sorted keys so diffs across epochs read cleanly.
func (t Topology) Save(path string) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// Directory renders the node map in the form the transports take.
func (t Topology) Directory() map[msg.Loc]string {
	dir := make(map[msg.Loc]string, len(t.Nodes))
	for id, addr := range t.Nodes {
		dir[msg.Loc(id)] = addr
	}
	return dir
}

// IDs returns the node ids sorted, for stable role splitting.
func (t Topology) IDs() []string {
	ids := make([]string, 0, len(t.Nodes))
	for id := range t.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
