// Package leaktest asserts that a test leaves no goroutines behind in the
// packages under test. It is stdlib-only: goroutine stacks come from
// runtime.Stack, and "ours" is decided by substring match on the stack
// text, so callers name the package path fragments they own.
package leaktest

import (
	"runtime"
	"strings"
	"time"
)

// stacks returns one stanza per live goroutine, excluding the caller's
// own goroutine (whose stack would otherwise self-match the test
// function's package).
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	parts := strings.Split(string(buf), "\n\n")
	if len(parts) > 0 {
		parts = parts[1:] // first stanza is the current goroutine
	}
	return parts
}

// leaked returns the goroutine stanzas matching any of the substrings.
func leaked(substrings []string) []string {
	var out []string
	for _, s := range stacks() {
		for _, sub := range substrings {
			if strings.Contains(s, sub) {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// AssertNone fails t when, after a grace period for in-flight shutdowns,
// any live goroutine's stack mentions one of the substrings. Retrying
// matters: Close methods signal exit and wait, but the exiting goroutine
// may still be parked in a read when the test body returns.
func AssertNone(t TB, substrings ...string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last []string
	for {
		last = leaked(substrings)
		if len(last) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("leaktest: %d goroutine(s) still running:\n%s",
		len(last), strings.Join(last, "\n\n"))
}

// Check registers a cleanup that runs AssertNone when the test finishes —
// the usual one-liner at the top of a test.
func Check(t TB, substrings ...string) {
	t.Helper()
	t.Cleanup(func() { AssertNone(t, substrings...) })
}

// TB is the subset of testing.TB leaktest needs; taking the interface
// keeps the package importable outside tests (e.g. example binaries'
// self-checks).
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}
