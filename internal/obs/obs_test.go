package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shadowdb/internal/msg"
)

func TestCounterGauge(t *testing.T) {
	o := New(0)
	c := o.Counter("x.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := o.Gauge("x.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Same name returns the same handle.
	if o.Counter("x.count") != c || o.Gauge("x.depth") != g {
		t.Fatal("registry returned a different handle for the same name")
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var o *Obs
	o.Counter("a").Inc()
	o.Gauge("b").Set(1)
	o.Histogram("c").Observe(1)
	o.Record(Event{Kind: "x"})
	o.EnableTracing(true)
	if o.Tracing() {
		t.Fatal("nil Obs reports tracing on")
	}
	if ev := o.Events(); ev != nil {
		t.Fatalf("nil Obs has events: %v", ev)
	}
	n := Nop()
	n.Counter("a").Inc()
	n.Histogram("c").ObserveDuration(time.Millisecond)
	n.Record(Event{Kind: "x"})
	if got := n.Snapshot(); len(got.Counters) != 0 {
		t.Fatalf("Nop snapshot has counters: %v", got.Counters)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs .. 1ms spread in ns
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 1000000 {
		t.Fatalf("max = %d", s.Max)
	}
	// Log buckets bound relative error by 2x; check order of magnitude.
	if s.P50 < 250000 || s.P50 > 1000000 {
		t.Fatalf("p50 = %d out of range", s.P50)
	}
	if s.P99 < s.P50 || s.P99 > s.Max {
		t.Fatalf("p99 = %d not in [p50, max]", s.P99)
	}
	if s.Mean < 400000 || s.Mean > 600000 {
		t.Fatalf("mean = %d, want ~500500", s.Mean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	o := New(4)
	o.Record(Event{Kind: "dropped-before-enable"})
	if got := len(o.Events()); got != 0 {
		t.Fatalf("recorded while disabled: %d events", got)
	}
	o.EnableTracing(true)
	for i := 0; i < 10; i++ {
		o.Record(Event{Kind: fmt.Sprintf("e%d", i), At: int64(i + 1)})
	}
	ev := o.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	for i, e := range ev {
		want := fmt.Sprintf("e%d", 6+i)
		if e.Kind != want {
			t.Fatalf("event %d kind = %q, want %q", i, e.Kind, want)
		}
		if e.Seq != int64(6+i) {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, 6+i)
		}
	}
	o.ResetTrace()
	if got := len(o.Events()); got != 0 {
		t.Fatalf("%d events after reset", got)
	}
}

func TestRecordStampsTime(t *testing.T) {
	o := New(8)
	o.EnableTracing(true)
	o.SetClock(func() int64 { return 42 })
	o.Record(Event{Kind: "a"})
	o.Record(Event{Kind: "b", At: 7}) // explicit At wins
	ev := o.Events()
	if ev[0].At != 42 || ev[1].At != 7 {
		t.Fatalf("timestamps = %d, %d; want 42, 7", ev[0].At, ev[1].At)
	}
	o.SetClock(nil)
	o.Record(Event{Kind: "c"})
	if at := o.Events()[2].At; at < time.Now().Add(-time.Hour).UnixNano() {
		t.Fatalf("wall clock not restored: at = %d", at)
	}
}

type extractorBody struct{ N int64 }

func TestExtract(t *testing.T) {
	RegisterExtractor(func(hdr string, body any) (Fields, bool) {
		b, ok := body.(extractorBody)
		if !ok {
			return Fields{}, false
		}
		return Fields{Slot: b.N, Ballot: NoField, Kind: "test." + hdr}, true
	})
	f := Extract("hit", extractorBody{N: 9})
	if f.Slot != 9 || f.Kind != "test.hit" {
		t.Fatalf("extracted %+v", f)
	}
	miss := Extract("other", "not-a-body")
	if miss.Slot != NoField || miss.Ballot != NoField {
		t.Fatalf("miss should return NoFields, got %+v", miss)
	}
}

func TestMergeAndGPMTrace(t *testing.T) {
	m1 := msg.M("h1", nil)
	m2 := msg.M("h2", nil)
	a := []Event{
		{Seq: 0, At: 10, Loc: "n1", Kind: "step", M: &m1},
		{Seq: 1, At: 30, Loc: "n1", Kind: "metric-only"},
	}
	b := []Event{
		{Seq: 0, At: 20, Loc: "n2", Kind: "step", M: &m2,
			Outs: []msg.Directive{msg.Send("n1", msg.M("out", nil))}},
	}
	merged := Merge(a, b)
	if len(merged) != 3 || merged[0].At != 10 || merged[1].At != 20 || merged[2].At != 30 {
		t.Fatalf("merge order wrong: %+v", merged)
	}
	tr := GPMTrace(merged)
	if len(tr) != 2 {
		t.Fatalf("gpm trace has %d entries, want 2 (metric-only skipped)", len(tr))
	}
	if tr[0].At != 0 || tr[1].At != 10*time.Nanosecond {
		t.Fatalf("relative times wrong: %v, %v", tr[0].At, tr[1].At)
	}
	if tr[0].In.Hdr != "h1" || tr[1].In.Hdr != "h2" {
		t.Fatalf("message order wrong: %v, %v", tr[0].In, tr[1].In)
	}
	if len(tr[1].Outs) != 1 || tr[1].Outs[0].Dest != "n1" {
		t.Fatalf("outs not preserved: %+v", tr[1].Outs)
	}
}

type traceBody struct{ K string }

func TestTraceEncodeDecode(t *testing.T) {
	msg.RegisterBody(traceBody{})
	m := msg.M("enc", traceBody{K: "v"})
	in := []Event{
		{Seq: 0, At: 5, Loc: "n1", Layer: LayerCore, Kind: "step", Hdr: "enc",
			Slot: 3, Ballot: NoField, Span: "c1/1", M: &m,
			Outs: []msg.Directive{msg.Send("n2", m)}},
	}
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("decoded %d events", len(out))
	}
	e := out[0]
	if e.Slot != 3 || e.Span != "c1/1" || e.M == nil || e.M.Hdr != "enc" {
		t.Fatalf("roundtrip mangled event: %+v", e)
	}
	if b, ok := e.M.Body.(traceBody); !ok || b.K != "v" {
		t.Fatalf("body = %#v", e.M.Body)
	}
}

func TestHTTPHandler(t *testing.T) {
	o := New(8)
	o.Counter("req.count").Add(3)
	o.Histogram("req.lat_ns").Observe(1000)
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if snap.Counters["req.count"] != 3 {
		t.Fatalf("metrics dump = %+v", snap)
	}
	if snap.Histograms["req.lat_ns"].Count != 1 {
		t.Fatalf("histogram missing from dump: %+v", snap.Histograms)
	}

	if _, err := srv.Client().Post(srv.URL+"/trace/start", "", nil); err != nil {
		t.Fatal(err)
	}
	if !o.Tracing() {
		t.Fatal("POST /trace/start did not enable tracing")
	}
	o.Record(Event{Kind: "k", At: 1, Slot: NoField, Ballot: NoField})

	res, err = srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	events, err := DecodeTrace(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != "k" {
		t.Fatalf("trace download = %+v", events)
	}

	res, err = srv.Client().Get(srv.URL + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	var pretty []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&pretty); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(pretty) != 1 || pretty[0]["kind"] != "k" {
		t.Fatalf("trace.json = %+v", pretty)
	}

	res, err = srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("pprof cmdline status %d", res.StatusCode)
	}
}

func TestServe(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", New(8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if addr == "" {
		t.Fatal("no bound address")
	}
}
