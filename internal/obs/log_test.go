package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"shadowdb/internal/obs"
)

func TestLogLevelGate(t *testing.T) {
	o := obs.New(16)
	lg := o.Logger("test")

	// Default level is info: debug is rejected.
	lg.Debugf("invisible")
	lg.Infof("visible %d", 1)
	recs := o.LogRecords()
	if len(recs) != 1 || recs[0].Msg != "visible 1" || recs[0].Level != obs.LevelInfo {
		t.Fatalf("records = %+v, want one info record", recs)
	}

	o.SetLogLevel(obs.LevelDebug)
	if !lg.Enabled(obs.LevelDebug) {
		t.Fatal("debug should be enabled after SetLogLevel")
	}
	lg.Debugf("now visible")
	if n := len(o.LogRecords()); n != 2 {
		t.Fatalf("got %d records, want 2", n)
	}

	o.SetLogLevel(obs.LevelOff)
	lg.Errorf("rejected even at error")
	if n := len(o.LogRecords()); n != 2 {
		t.Fatalf("LevelOff leaked a record: %d", n)
	}
}

func TestLogNopAndNilSafety(t *testing.T) {
	// Nop Obs: every call is a no-op, Enabled is false.
	nop := obs.Nop()
	lg := nop.Logger("x")
	lg.Infof("dropped")
	if lg.Enabled(obs.LevelError) {
		t.Fatal("Nop logger claims enabled")
	}
	if recs := nop.LogRecords(); recs != nil {
		t.Fatalf("Nop records = %v", recs)
	}
	if nop.LogLevel() != obs.LevelOff {
		t.Fatalf("Nop level = %v, want off", nop.LogLevel())
	}

	// Nil logger and nil Obs.
	var nilLg *obs.Logger
	nilLg.Infof("dropped")
	nilLg.WithNode("n1").Errorf("dropped")
	var nilObs *obs.Obs
	nilObs.Logger("x").Warnf("dropped")
	nilObs.SetLogLevel(obs.LevelDebug)
}

func TestLogRingOverflowAccounting(t *testing.T) {
	o := obs.New(16)
	o.SetLogCap(8)
	lg := o.Logger("overflow")
	for i := 0; i < 20; i++ {
		lg.Infof("rec %d", i)
	}
	recs := o.LogRecords()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d, want 8", len(recs))
	}
	// Oldest-first and contiguous: records 12..19 survive.
	for i, r := range recs {
		want := fmt.Sprintf("rec %d", 12+i)
		if r.Msg != want || r.Seq != int64(12+i) {
			t.Fatalf("recs[%d] = %q seq=%d, want %q seq=%d", i, r.Msg, r.Seq, want, 12+i)
		}
	}
	if d := o.LogDropped(); d != 12 {
		t.Fatalf("LogDropped = %d, want 12", d)
	}
	if g := obs.LogGap(recs); g != 12 {
		t.Fatalf("LogGap = %d, want 12", g)
	}
	// A set with an internal hole also counts as gapped.
	holed := append(append([]obs.LogRecord{}, recs[:3]...), recs[5:]...)
	if g := obs.LogGap(holed); g != 14 {
		t.Fatalf("LogGap with hole = %d, want 14", g)
	}
}

func TestLogNodeStamping(t *testing.T) {
	o := obs.New(16)
	o.SetNode("n1")
	o.Logger("a").Infof("default node")
	o.Logger("b").WithNode("n2").Infof("bound node")
	recs := o.LogRecords()
	if len(recs) != 2 || recs[0].Node != "n1" || recs[1].Node != "n2" {
		t.Fatalf("node stamping wrong: %+v", recs)
	}
	if o.Node() != "n1" {
		t.Fatalf("Node() = %q", o.Node())
	}
}

func TestLogStreamAndTraceCorrelation(t *testing.T) {
	o := obs.New(16)
	var buf bytes.Buffer
	o.SetLogStream(&buf)
	o.SetNode("n3")
	o.Tick() // lamport 1
	o.Logger("store").Logf(obs.LevelWarn, "req-42", "torn tail at %d", 99)

	recs := o.LogRecords()
	if len(recs) != 1 {
		t.Fatalf("records = %+v", recs)
	}
	r := recs[0]
	if r.Trace != "req-42" || r.LC != 1 || r.Component != "store" {
		t.Fatalf("record = %+v", r)
	}
	line := buf.String()
	for _, want := range []string{"warn", "n3", "[store]", "torn tail at 99", "trace=req-42", "lc=1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("stream line %q missing %q", line, want)
		}
	}

	// Level round-trips through JSON as a name.
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"level":"warn"`)) {
		t.Fatalf("level not marshaled as name: %s", data)
	}
	var back obs.LogRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Level != obs.LevelWarn {
		t.Fatalf("level round-trip = %v", back.Level)
	}
}

func TestParseLevel(t *testing.T) {
	for _, lv := range []obs.Level{obs.LevelDebug, obs.LevelInfo, obs.LevelWarn, obs.LevelError, obs.LevelOff} {
		got, err := obs.ParseLevel(lv.String())
		if err != nil || got != lv {
			t.Fatalf("ParseLevel(%q) = %v, %v", lv.String(), got, err)
		}
	}
	if _, err := obs.ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestLogConcurrent(t *testing.T) {
	o := obs.New(16)
	o.SetLogCap(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lg := o.Logger(fmt.Sprintf("g%d", g))
			for i := 0; i < 100; i++ {
				lg.Infof("msg %d", i)
			}
		}(g)
	}
	wg.Wait()
	recs := o.LogRecords()
	if len(recs) != 64 {
		t.Fatalf("ring holds %d, want 64", len(recs))
	}
	if g := obs.LogGap(recs); g != 800-64 {
		t.Fatalf("LogGap = %d, want %d", g, 800-64)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("ring not seq-contiguous at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}
