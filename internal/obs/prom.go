package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the metrics registry,
// written by hand against the format spec — the repo takes no client
// library dependency. Dotted metric names become underscore-separated
// ("runtime.step_ns" -> "runtime_step_ns"); histograms are exposed as
// native Prometheus histograms (cumulative _bucket{le=...} series from
// the occupied log buckets, ending at le="+Inf", plus _sum and _count),
// which external dashboards can aggregate across nodes with
// histogram_quantile — a quantile-only summary can't be merged.

// promName sanitizes a metric name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Le, b.Cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"%s_bucket{le=\"+Inf\"} %d\n"+
				"%s_sum %d\n"+
				"%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
		// Max has no histogram slot; expose it as a companion gauge.
		if _, err := fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", pn, pn, h.Max); err != nil {
			return err
		}
	}
	return nil
}
