package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"shadowdb/internal/msg"
)

// The structured logging side of the flight recorder. Every layer of the
// stack logs through a Logger handle bound to an Obs: records carry the
// node id, component, level, Lamport clock, and (when the call site has
// one) the per-request trace ID, so a log line from the store can be
// correlated with the broadcast trace events around it. Records land in
// a bounded in-memory ring — the same discipline as the trace ring: the
// ring is the always-on flight recorder, dumped wholesale into a
// postmortem bundle when something trips — with optional line streaming
// to a writer (stderr in the binaries).
//
// The hot-path contract mirrors the metrics handles: a call below the
// active level returns after a couple of nil checks and one atomic load,
// with zero allocations when the call site passes no format arguments
// (guard with Enabled before building arguments on truly hot paths).

// DefaultLogCap is the log ring capacity: enough for minutes of Info
// traffic and a useful Debug window, bounding memory at ~1 MB.
const DefaultLogCap = 8192

// Level is a log severity. Records below the ring's active level are
// rejected at the call site.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff disables logging entirely (no level reaches it).
	LevelOff
)

var levelNames = [...]string{"debug", "info", "warn", "error", "off"}

// String renders the level ("debug", "info", "warn", "error", "off").
func (l Level) String() string {
	if l < 0 || int(l) >= len(levelNames) {
		return fmt.Sprintf("level(%d)", int32(l))
	}
	return levelNames[l]
}

// ParseLevel is String's inverse.
func ParseLevel(s string) (Level, error) {
	for i, n := range levelNames {
		if s == n {
			return Level(i), nil
		}
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error|off)", s)
}

// MarshalJSON encodes the level as its name, keeping bundles and the
// /logs endpoint human-readable.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON reverses MarshalJSON.
func (l *Level) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	lv, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = lv
	return nil
}

// LogRecord is one structured log record.
type LogRecord struct {
	// Seq is the record's position in its ring (monotone per Obs).
	Seq int64 `json:"seq"`
	// At is the timestamp in nanoseconds (same clock as trace events:
	// wall by default, virtual under the simulator).
	At int64 `json:"at"`
	// LC is the node's Lamport clock at the record, for causal merging
	// with trace events across nodes.
	LC int64 `json:"lc,omitempty"`
	// Node is the emitting node (the logger's binding, or the Obs-wide
	// default set by SetNode).
	Node msg.Loc `json:"node,omitempty"`
	// Component names the emitting layer ("broadcast", "store", ...).
	Component string `json:"component"`
	// Level is the record's severity.
	Level Level `json:"level"`
	// Msg is the formatted message.
	Msg string `json:"msg"`
	// Trace is the per-request trace ID when the call site had one.
	Trace string `json:"trace,omitempty"`
}

// String renders the record as one line for streams and bundles.
func (r LogRecord) String() string {
	ts := time.Unix(0, r.At).UTC().Format("15:04:05.000000")
	s := ts + " " + r.Level.String()
	if r.Node != "" {
		s += " " + string(r.Node)
	}
	s += " [" + r.Component + "] " + r.Msg
	if r.Trace != "" {
		s += " trace=" + r.Trace
	}
	if r.LC != 0 {
		s += fmt.Sprintf(" lc=%d", r.LC)
	}
	return s
}

// logState is the per-Obs log ring. The level gate is an atomic load so
// rejected calls never touch the mutex; accepted records append under a
// short critical section exactly like the trace ring.
type logState struct {
	level atomic.Int32

	mu     sync.Mutex
	node   msg.Loc
	ring   []LogRecord
	cap    int
	seq    int64 // next Seq; ring holds seq-len(ring)..seq-1
	stream io.Writer
}

func newLogState() *logState {
	ls := &logState{cap: DefaultLogCap}
	ls.level.Store(int32(LevelInfo))
	return ls
}

// Logger is a cheap handle binding an Obs to a component (and optionally
// a node). All methods are nil-safe, like the metric handles.
type Logger struct {
	o         *Obs
	component string
	node      msg.Loc
}

// Logger returns a handle emitting into o's log ring under the given
// component name. Returns nil on a nil Obs (every method is a no-op).
func (o *Obs) Logger(component string) *Logger {
	if o == nil {
		return nil
	}
	return &Logger{o: o, component: component}
}

// L is the package-level helper bound to Default, the logging analogue
// of C/G/H: layers that instrument the process-wide registry log here.
// The binding is late — the handle resolves Default at each call, so
// package-level `var lg = obs.L(...)` vars follow experiments that
// repoint Default at a run-scoped Obs (the DES postmortem harness).
func L(component string) *Logger { return &Logger{component: component} }

// WithNode returns a copy of the logger that stamps records with node —
// for components constructed per node in multi-node processes (DES,
// in-process clusters). Single-node binaries set the Obs-wide default
// with SetNode instead.
func (l *Logger) WithNode(node msg.Loc) *Logger {
	if l == nil {
		return nil
	}
	cp := *l
	cp.node = node
	return &cp
}

// obs resolves the logger's Obs: its explicit binding, or Default for
// handles minted by L (late, so a repointed Default takes effect).
func (l *Logger) obs() *Obs {
	if l.o != nil {
		return l.o
	}
	return Default
}

// Enabled reports whether records at lv currently pass the gate. Hot
// paths guard on it before building format arguments.
func (l *Logger) Enabled(lv Level) bool {
	if l == nil {
		return false
	}
	o := l.obs()
	if o == nil {
		return false
	}
	ls := o.logs
	return ls != nil && lv >= Level(ls.level.Load())
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) {
	if l.Enabled(LevelDebug) {
		l.emit(LevelDebug, "", format, args)
	}
}

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) {
	if l.Enabled(LevelInfo) {
		l.emit(LevelInfo, "", format, args)
	}
}

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) {
	if l.Enabled(LevelWarn) {
		l.emit(LevelWarn, "", format, args)
	}
}

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) {
	if l.Enabled(LevelError) {
		l.emit(LevelError, "", format, args)
	}
}

// Logf is the general entry point: an explicit level and the
// per-request trace ID the record should carry ("" for none).
func (l *Logger) Logf(lv Level, trace, format string, args ...any) {
	if l.Enabled(lv) {
		l.emit(lv, trace, format, args)
	}
}

// emit formats and appends one accepted record. The stream write happens
// under the ring mutex so interleaved loggers produce whole lines in
// ring order.
func (l *Logger) emit(lv Level, trace, format string, args []any) {
	text := format
	if len(args) > 0 {
		text = fmt.Sprintf(format, args...)
	}
	o := l.obs()
	ls := o.logs
	rec := LogRecord{
		At: o.Now(), LC: o.lc.Load(), Node: l.node,
		Component: l.component, Level: lv, Msg: text, Trace: trace,
	}
	ls.mu.Lock()
	if rec.Node == "" {
		rec.Node = ls.node
	}
	rec.Seq = ls.seq
	ls.seq++
	if ls.ring == nil {
		ls.ring = make([]LogRecord, 0, ls.cap)
	}
	if len(ls.ring) < ls.cap {
		ls.ring = append(ls.ring, rec)
	} else {
		ls.ring[int(rec.Seq)%ls.cap] = rec
	}
	if ls.stream != nil {
		fmt.Fprintln(ls.stream, rec.String())
	}
	ls.mu.Unlock()
}

// ------------------------------------------------------- ring controls --

// SetLogLevel sets the gate: records below lv are rejected at the call
// site (LevelOff disables logging entirely).
func (o *Obs) SetLogLevel(lv Level) {
	if o == nil || o.logs == nil {
		return
	}
	o.logs.level.Store(int32(lv))
}

// LogLevel returns the active gate (LevelOff on a Nop Obs).
func (o *Obs) LogLevel() Level {
	if o == nil || o.logs == nil {
		return LevelOff
	}
	return Level(o.logs.level.Load())
}

// SetNode sets the default node id stamped on records whose logger has
// no binding of its own — one call at startup in single-node binaries.
func (o *Obs) SetNode(node msg.Loc) {
	if o == nil || o.logs == nil {
		return
	}
	o.logs.mu.Lock()
	o.logs.node = node
	o.logs.mu.Unlock()
}

// Node returns the default node id set by SetNode.
func (o *Obs) Node() msg.Loc {
	if o == nil || o.logs == nil {
		return ""
	}
	o.logs.mu.Lock()
	defer o.logs.mu.Unlock()
	return o.logs.node
}

// SetLogStream streams every accepted record as one formatted line to w
// (nil stops streaming). The ring keeps recording either way.
func (o *Obs) SetLogStream(w io.Writer) {
	if o == nil || o.logs == nil {
		return
	}
	o.logs.mu.Lock()
	o.logs.stream = w
	o.logs.mu.Unlock()
}

// SetLogCap resizes the ring capacity, dropping buffered records — a
// setup-time knob for tests and small-footprint deployments.
func (o *Obs) SetLogCap(n int) {
	if o == nil || o.logs == nil || n <= 0 {
		return
	}
	o.logs.mu.Lock()
	o.logs.cap = n
	o.logs.ring = nil
	o.logs.seq = 0
	o.logs.mu.Unlock()
}

// LogRecords returns the buffered records oldest-first.
func (o *Obs) LogRecords() []LogRecord {
	if o == nil || o.logs == nil {
		return nil
	}
	ls := o.logs
	ls.mu.Lock()
	defer ls.mu.Unlock()
	out := make([]LogRecord, 0, len(ls.ring))
	if len(ls.ring) < ls.cap {
		return append(out, ls.ring...)
	}
	// Full ring: oldest entry sits at seq%cap.
	start := int(ls.seq) % ls.cap
	out = append(out, ls.ring[start:]...)
	return append(out, ls.ring[:start]...)
}

// LogDropped is the overflow accounting: how many records the bounded
// ring has evicted since startup. The bundle records it so a postmortem
// reader knows whether the window is complete.
func (o *Obs) LogDropped() int64 {
	if o == nil || o.logs == nil {
		return 0
	}
	o.logs.mu.Lock()
	defer o.logs.mu.Unlock()
	if d := o.logs.seq - int64(o.logs.cap); d > 0 {
		return d
	}
	return 0
}

// LogGap inspects a downloaded record set for evictions, the log
// counterpart of RingGap: records are Seq-contiguous from zero per ring,
// so a set whose smallest Seq is s lost its first s records, and any
// internal discontinuity counts as missing too.
func LogGap(records []LogRecord) int64 {
	if len(records) == 0 {
		return 0
	}
	min, max := records[0].Seq, records[0].Seq
	for _, r := range records[1:] {
		if r.Seq < min {
			min = r.Seq
		}
		if r.Seq > max {
			max = r.Seq
		}
	}
	return min + (max - min + 1 - int64(len(records)))
}
