// Package bridge replays recorded obs traces through the verify property
// registry — a Derecho-style runtime checker. The invariants the bounded
// verifier checks over simulated schedules (broadcast total order, synod
// single-value-per-slot, ShadowDB durability) are checked here against
// the event stream of a live run: download each node's trace from the
// admin endpoint, obs.Merge them, and Check.
package bridge

import (
	"fmt"
	"sort"
	"strings"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/core"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/verify"
)

// Options name the deployment facts a trace does not carry.
type Options struct {
	// Subscribers are the broadcast subscribers to check total order
	// across. Empty means infer them from the trace (every location a
	// Deliver was sent to).
	Subscribers []msg.Loc
	// Joiners are locations that joined the cluster mid-run: their first
	// observed delivery baselines the in-order-delivery frontier instead
	// of being required to start at slot 0 (the slots before a joiner's
	// activation arrive by state transfer, never as Deliver events).
	// Everyone else is held to the strict gap-free-from-zero order.
	Joiners []msg.Loc
}

// Suite builds a verify.Suite whose properties check the recorded trace.
// The same registry type that carries the bounded-verification properties
// carries these runtime checks, so Table-I style accounting and the
// Run/CountByModule machinery apply unchanged.
func Suite(events []obs.Event, opt Options) *verify.Suite {
	tr := obs.GPMTrace(events)
	subs := opt.Subscribers
	if len(subs) == 0 {
		subs = inferSubscribers(tr)
	}
	var s verify.Suite
	s.Add(
		verify.Property{
			Module: "Runtime", Name: "broadcast/total-order", Mode: verify.Manual,
			Check: func() error {
				if err := broadcast.CheckTotalOrder(tr, subs); err != nil {
					return err
				}
				return checkReceivedTotalOrder(tr)
			},
		},
		verify.Property{
			Module: "Runtime", Name: "broadcast/in-order-delivery", Mode: verify.Manual,
			Check: func() error { return checkInOrderDelivery(tr, opt.Joiners) },
		},
		verify.Property{
			Module: "Runtime", Name: "consensus/single-value-per-slot", Mode: verify.Manual,
			Check: func() error { return checkSingleValue(tr) },
		},
		verify.Property{
			Module: "Runtime", Name: "shadowdb/durability", Mode: verify.Manual,
			Check: func() error { return checkDurability(tr) },
		},
	)
	return &s
}

// Check runs every bridge property over the trace.
func Check(events []obs.Event, opt Options) error {
	return Suite(events, opt).Run()
}

// SuiteTraces builds a suite over per-node trace downloads, prepending a
// trace-integrity property: if any node's ring buffer overflowed (events
// evicted before download), the replay refuses to certify rather than
// reporting a clean check over evidence it never saw. The remaining
// properties run over the causal merge of the per-node traces.
func SuiteTraces(traces map[string][]obs.Event, opt Options) *verify.Suite {
	var nodes []string
	var parts [][]obs.Event
	for n := range traces {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		parts = append(parts, traces[n])
	}

	var s verify.Suite
	s.Add(verify.Property{
		Module: "Runtime", Name: "trace/complete", Mode: verify.Manual,
		Check: func() error {
			for _, n := range nodes {
				if gap := obs.RingGap(traces[n]); gap > 0 {
					return fmt.Errorf("bridge: trace incomplete, %s ring overflowed (%d events lost)", n, gap)
				}
			}
			return nil
		},
	})
	s.Add(Suite(obs.MergeCausal(parts...), opt).Properties()...)
	return &s
}

// CheckTraces runs every bridge property, including trace integrity,
// over per-node trace downloads.
func CheckTraces(traces map[string][]obs.Event, opt Options) error {
	return SuiteTraces(traces, opt).Run()
}

// inferSubscribers collects every location a Deliver was addressed to.
func inferSubscribers(tr []gpm.TraceEntry) []msg.Loc {
	seen := make(map[msg.Loc]bool)
	var subs []msg.Loc
	for _, e := range tr {
		for _, o := range e.Outs {
			if o.M.Hdr == broadcast.HdrDeliver && !seen[o.Dest] {
				seen[o.Dest] = true
				subs = append(subs, o.Dest)
			}
		}
	}
	return subs
}

// checkReceivedTotalOrder is the receive-side half of the total-order
// property, mirroring the online checker: every Deliver RECEIVED — at
// any location — for a given slot must carry the same batch. The
// sender-side CheckTotalOrder cannot see a delivery that diverged on the
// receive path (corruption, a forged notification), because those never
// appear as send directives.
func checkReceivedTotalOrder(tr []gpm.TraceEntry) error {
	batch := make(map[int]string)
	first := make(map[int]msg.Loc)
	for _, e := range tr {
		if e.In.Hdr != broadcast.HdrDeliver {
			continue
		}
		d, ok := e.In.Body.(broadcast.Deliver)
		if !ok {
			continue
		}
		fp := batchFingerprint(d.Msgs)
		if prev, ok := batch[d.Slot]; !ok {
			batch[d.Slot] = fp
			first[d.Slot] = e.Loc
		} else if prev != fp {
			return fmt.Errorf("bridge: %s received a batch for slot %d that differs from the one %s received",
				e.Loc, d.Slot, first[d.Slot])
		}
	}
	return nil
}

// batchFingerprint is the order-insensitive identity of a delivered
// batch (sorted message keys, as in broadcast.sameBatch).
func batchFingerprint(msgs []broadcast.Bcast) string {
	keys := make([]string, len(msgs))
	for i, b := range msgs {
		keys[i] = fmt.Sprintf("%s/%d", b.From, b.Seq)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

// checkInOrderDelivery validates that each location RECEIVED Deliver
// notifications in monotone, gap-free slot order (repeats of already-seen
// slots are fine — subscribers notified by several service nodes see
// duplicates). This is the receiver-side complement of CheckTotalOrder,
// and the property a reordered trace violates.
//
// A location named in joiners enters the slot order mid-stream: its
// first observed delivery baselines the frontier, and gap-freedom is
// enforced from there on. Everyone else must start at slot 0.
func checkInOrderDelivery(tr []gpm.TraceEntry, joiners []msg.Loc) error {
	joiner := make(map[msg.Loc]bool, len(joiners))
	for _, j := range joiners {
		joiner[j] = true
	}
	high := make(map[msg.Loc]int)
	for _, e := range tr {
		if e.In.Hdr != broadcast.HdrDeliver {
			continue
		}
		d, ok := e.In.Body.(broadcast.Deliver)
		if !ok {
			continue
		}
		h, seen := high[e.Loc]
		if !seen {
			if joiner[e.Loc] {
				high[e.Loc] = d.Slot
				continue
			}
			h = -1
		}
		if d.Slot > h+1 {
			return fmt.Errorf("bridge: %s received slot %d before slot %d", e.Loc, d.Slot, h+1)
		}
		if d.Slot == h+1 {
			high[e.Loc] = d.Slot
		}
	}
	return nil
}

// checkSingleValue validates consensus safety as observed on the wire:
// no instance was ever decided with two different values, across both
// protocols' Decide announcements (sent or received).
func checkSingleValue(tr []gpm.TraceEntry) error {
	type slot struct {
		proto string
		inst  int
	}
	chosen := make(map[slot]string)
	note := func(proto string, inst int, val string) error {
		k := slot{proto, inst}
		if prev, ok := chosen[k]; ok && prev != val {
			return fmt.Errorf("bridge: %s instance %d decided twice: %q and %q", proto, inst, prev, val)
		}
		chosen[k] = val
		return nil
	}
	scan := func(m msg.Msg) error {
		switch b := m.Body.(type) {
		case synod.Decide:
			if m.Hdr == synod.HdrDecide {
				return note("synod", b.Inst, b.Val)
			}
		case twothird.Decide:
			if m.Hdr == twothird.HdrDecide {
				return note("twothird", b.Inst, b.Val)
			}
		}
		return nil
	}
	for _, e := range tr {
		if err := scan(e.In); err != nil {
			return err
		}
		for _, o := range e.Outs {
			if err := scan(o.M); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkDurability validates the SMR durability property: a replica that
// executes off the total order may only acknowledge a transaction that
// was delivered to it in an ordered batch. Locations that never received
// a transaction-bearing Deliver (PBR replicas, whose replies are covered
// by the ack protocol instead) are out of scope.
func checkDurability(tr []gpm.TraceEntry) error {
	delivered := make(map[msg.Loc]map[string]bool)
	for _, e := range tr {
		if e.In.Hdr != broadcast.HdrDeliver {
			continue
		}
		d, ok := e.In.Body.(broadcast.Deliver)
		if !ok {
			continue
		}
		for _, b := range d.Msgs {
			req, err := core.DecodeTx(b.Payload)
			if err != nil {
				continue
			}
			if delivered[e.Loc] == nil {
				delivered[e.Loc] = make(map[string]bool)
			}
			delivered[e.Loc][req.Key()] = true
		}
		// Replies emitted in this same step (the usual SMR shape) count
		// the just-delivered transactions, because the map is populated
		// before the check below runs on later entries — and within this
		// entry, by construction, before we scan its Outs.
		for _, o := range e.Outs {
			if err := checkReply(delivered, e.Loc, o); err != nil {
				return err
			}
		}
	}
	// Replies emitted outside a Deliver step (duplicate answers on
	// client retry) must still name a previously delivered transaction.
	for _, e := range tr {
		if e.In.Hdr == broadcast.HdrDeliver {
			continue // checked above
		}
		if delivered[e.Loc] == nil {
			continue // not an SMR executor: out of scope
		}
		for _, o := range e.Outs {
			if err := checkReply(delivered, e.Loc, o); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkReply validates one outgoing successful TxResult against the
// sender's delivered set.
func checkReply(delivered map[msg.Loc]map[string]bool, loc msg.Loc, o msg.Directive) error {
	if o.M.Hdr != core.HdrTxResult {
		return nil
	}
	res, ok := o.M.Body.(core.TxResult)
	if !ok || res.Err != "" {
		return nil
	}
	key := core.TxRequest{Client: res.Client, Seq: res.Seq}.Key()
	if !delivered[loc][key] {
		return fmt.Errorf("bridge: %s acknowledged %s without an ordered delivery", loc, key)
	}
	return nil
}
