package bridge_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/bridge"
	"shadowdb/internal/runtime"
	"shadowdb/internal/sqldb"
)

// seededSMREvents runs a deterministic SMR deployment (3 broadcast nodes,
// 3 co-located replicas, 2 clients) in the reference runner and returns
// the run's trace as obs events.
func seededSMREvents(t *testing.T) []obs.Event {
	t.Helper()
	bnodes := []msg.Loc{"b1", "b2", "b3"}
	rlocs := []msg.Loc{"r1", "r2", "r3"}
	mkDB := func(slf msg.Loc) *sqldb.DB {
		db, err := sqldb.Open("h2:mem:" + string(slf))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.BankSetup(db, 20); err != nil {
			t.Fatal(err)
		}
		return db
	}
	sys := core.NewSMRSystem(bnodes, rlocs, core.BankRegistry(), mkDB)
	clients := map[msg.Loc]*core.Client{
		"c0": {Slf: "c0", Mode: core.ModeSMR, BcastNodes: bnodes, Retry: 200 * time.Millisecond},
		"c1": {Slf: "c1", Mode: core.ModeSMR, BcastNodes: bnodes, Retry: 200 * time.Millisecond},
	}
	done := 0
	extra := func(slf msg.Loc) gpm.Process {
		c, ok := clients[slf]
		if !ok {
			return gpm.Halt()
		}
		return core.ClientProc(c, func(core.TxResult) { done++ })
	}
	runner := gpm.NewRunner(sys.System([]msg.Loc{"c0", "c1"}, extra))
	submit := func(cli msg.Loc, typ string, args ...any) {
		want := done + 1
		runner.Inject(cli, msg.M(core.HdrSubmit, core.SubmitBody{Type: typ, Args: args}))
		ok, err := runner.RunUntil(2_000_000, func() bool { return done >= want })
		if err != nil || !ok {
			t.Fatalf("seeded %s did not complete: ok=%v err=%v", typ, ok, err)
		}
	}
	// Sequential submissions force distinct broadcast slots, so every
	// replica receives at least two Deliver notifications.
	submit("c0", "deposit", 1, 10)
	submit("c1", "deposit", 2, 20)
	submit("c0", "balance", 1)
	if _, err := runner.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	return obs.FromGPM(runner.Trace())
}

func TestBridgeSeededSMRRunPasses(t *testing.T) {
	events := seededSMREvents(t)
	s := bridge.Suite(events, bridge.Options{})
	if got := len(s.Properties()); got != 4 {
		t.Fatalf("bridge suite has %d properties, want 4", got)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("seeded SMR trace failed bridge check: %v", err)
	}
	// The explicit-subscriber form must agree with inference.
	if err := bridge.Check(events, bridge.Options{Subscribers: []msg.Loc{"r1", "r2", "r3"}}); err != nil {
		t.Fatalf("explicit subscribers: %v", err)
	}
}

// A node that joined mid-run delivers from its bootstrap frontier, not
// from slot 0. Its trace must fail the strict in-order check (a silent
// partial trace is otherwise indistinguishable from a gap) and pass
// once the location is declared a joiner.
func TestBridgeJoinerBaseline(t *testing.T) {
	events := seededSMREvents(t)
	// Graft a joiner: r4 receives the same deliveries r1 received, but
	// only from slot 1 on — the slots before its activation arrived by
	// state transfer and never appear as Deliver events.
	var grafted []obs.Event
	for _, e := range events {
		grafted = append(grafted, e)
		if e.M == nil || e.M.Hdr != broadcast.HdrDeliver || e.Loc != "r1" {
			continue
		}
		d, ok := e.M.Body.(broadcast.Deliver)
		if !ok || d.Slot < 1 {
			continue
		}
		je := e
		je.Loc = "r4"
		je.M = &msg.Msg{Hdr: broadcast.HdrDeliver, Body: d}
		je.Outs = nil
		grafted = append(grafted, je)
	}
	err := bridge.Check(grafted, bridge.Options{})
	if err == nil || !strings.Contains(err.Error(), "r4") {
		t.Fatalf("undeclared mid-run joiner accepted: %v", err)
	}
	if err := bridge.Check(grafted, bridge.Options{Joiners: []msg.Loc{"r4"}}); err != nil {
		t.Fatalf("declared joiner rejected: %v", err)
	}
}

func TestBridgeFlagsReorderedDelivery(t *testing.T) {
	events := seededSMREvents(t)
	// Corrupt the trace: at one replica, swap the payloads of two Deliver
	// receive events so a later slot arrives before an earlier one. The
	// timestamps stay put — only the delivery contents are reordered.
	byLoc := make(map[msg.Loc][]int)
	for i, e := range events {
		if e.M != nil && e.M.Hdr == broadcast.HdrDeliver {
			byLoc[e.Loc] = append(byLoc[e.Loc], i)
		}
	}
	swapped := false
	for loc, idxs := range byLoc {
		for a := 0; a < len(idxs) && !swapped; a++ {
			for b := a + 1; b < len(idxs) && !swapped; b++ {
				i, j := idxs[a], idxs[b]
				di := events[i].M.Body.(broadcast.Deliver)
				dj := events[j].M.Body.(broadcast.Deliver)
				if di.Slot == dj.Slot {
					continue
				}
				events[i].M, events[j].M = events[j].M, events[i].M
				events[i].Outs, events[j].Outs = events[j].Outs, events[i].Outs
				events[i].Slot, events[j].Slot = events[j].Slot, events[i].Slot
				t.Logf("reordered slots %d and %d at %s", di.Slot, dj.Slot, loc)
				swapped = true
			}
		}
		if swapped {
			break
		}
	}
	if !swapped {
		t.Fatal("trace has no replica with two distinct delivered slots")
	}
	err := bridge.Check(events, bridge.Options{})
	if err == nil {
		t.Fatal("bridge accepted a reordered-delivery trace")
	}
	if !strings.Contains(err.Error(), "received slot") {
		t.Errorf("unexpected failure shape: %v", err)
	}
}

// TestBridgeFlagsDivergedReceive forges a receive-only Deliver whose
// batch conflicts with the one every subscriber actually received for
// that slot. No send directive carries the forged batch, so the
// sender-side CheckTotalOrder walk is blind to it; the receive-side
// total-order complement must flag it.
func TestBridgeFlagsDivergedReceive(t *testing.T) {
	events := seededSMREvents(t)
	forged := false
	for _, e := range events {
		if e.M == nil || e.M.Hdr != broadcast.HdrDeliver {
			continue
		}
		d, ok := e.M.Body.(broadcast.Deliver)
		if !ok {
			continue
		}
		m := msg.M(broadcast.HdrDeliver, broadcast.Deliver{
			Slot: d.Slot, Msgs: []broadcast.Bcast{{From: "evil", Seq: 1}},
		})
		events = append(events, obs.Event{
			Seq: events[len(events)-1].Seq + 1, At: events[len(events)-1].At + 1,
			Loc: e.Loc, Layer: obs.LayerRuntime, Kind: "deliver",
			Hdr: broadcast.HdrDeliver, Slot: int64(d.Slot), M: &m,
		})
		forged = true
		break
	}
	if !forged {
		t.Fatal("trace has no Deliver receive event to forge against")
	}
	err := bridge.Check(events, bridge.Options{})
	if err == nil {
		t.Fatal("bridge accepted a trace with a diverged received batch")
	}
	if !strings.Contains(err.Error(), "differs from the one") {
		t.Errorf("unexpected failure shape: %v", err)
	}
}

func TestBridgeFlagsUndeliveredAck(t *testing.T) {
	events := seededSMREvents(t)
	// Corrupt the trace differently: a replica acknowledges a transaction
	// that was never delivered to it. Durability must flag it.
	fake := msg.M(core.HdrTxResult, core.TxResult{Client: "c9", Seq: 99})
	events = append(events, obs.Event{
		Seq: int64(len(events)), At: events[len(events)-1].At + 1,
		Loc: "r1", Layer: obs.LayerRuntime, Kind: "step",
		Hdr: "noop", Slot: obs.NoField, Ballot: obs.NoField,
		M:    &msg.Msg{Hdr: "noop"},
		Outs: []msg.Directive{msg.Send("c9", fake)},
	})
	err := bridge.Check(events, bridge.Options{})
	if err == nil {
		t.Fatal("bridge accepted an unordered acknowledgement")
	}
	if !strings.Contains(err.Error(), "without an ordered delivery") {
		t.Errorf("unexpected failure shape: %v", err)
	}
}

// TestBridgeLiveTCPEndToEnd is the ISSUE acceptance scenario: a 3-replica
// SMR deployment over real TCP, each node carrying its own Obs served on
// an admin endpoint. Tracing is switched on over HTTP, transactions run,
// and the per-node traces are downloaded, merged, and replayed through
// the property registry.
func TestBridgeLiveTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP deployment")
	}
	core.RegisterWireTypes()
	broadcast.RegisterWireTypes()
	msg.RegisterBody(core.SubmitBody{})

	bnodes := []msg.Loc{"b1", "b2", "b3"}
	rlocs := []msg.Loc{"r1", "r2", "r3"}
	locs := append(append(append([]msg.Loc{}, bnodes...), rlocs...), "cli")

	transports := make(map[msg.Loc]*network.TCP, len(locs))
	for _, l := range locs {
		tr, err := network.NewTCP(l, map[msg.Loc]string{l: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		transports[l] = tr
	}
	for _, a := range locs {
		for _, b := range locs {
			transports[a].SetPeer(b, transports[b].Addr())
		}
	}

	mkDB := func(slf msg.Loc) *sqldb.DB {
		db, err := sqldb.Open("h2:mem:" + string(slf))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.BankSetup(db, 10); err != nil {
			t.Fatal(err)
		}
		return db
	}
	sys := core.NewSMRSystem(bnodes, rlocs, core.BankRegistry(), mkDB)
	bgen := broadcast.Spec(sys.Bcast).Generator()

	var hosts []*runtime.Host
	var servers []*http.Server
	admins := make(map[msg.Loc]string)
	t.Cleanup(func() {
		for _, h := range hosts {
			_ = h.Close()
		}
		for _, s := range servers {
			_ = s.Close()
		}
		for _, tr := range transports {
			_ = tr.Close()
		}
	})
	spawn := func(l msg.Loc, p gpm.Process) *runtime.Host {
		h := runtime.NewHost(l, transports[l], p)
		h.Obs = obs.New(8192)
		srv, addr, err := obs.Serve("127.0.0.1:0", h.Obs)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		admins[l] = addr
		h.Start()
		hosts = append(hosts, h)
		return h
	}
	for _, l := range bnodes {
		spawn(l, bgen(l))
	}
	var mu sync.Mutex
	for _, l := range rlocs {
		spawn(l, lockedProc{mu: &mu, p: sys.Replicas[l]})
	}
	results := make(chan core.TxResult, 64)
	cli := &core.Client{Slf: "cli", Mode: core.ModeSMR, BcastNodes: bnodes, Retry: 500 * time.Millisecond}
	cliHost := spawn("cli", core.ClientProc(cli, func(r core.TxResult) { results <- r }))

	// Switch tracing on everywhere through the admin endpoint — the same
	// control surface an operator uses.
	for l, addr := range admins {
		resp, err := http.Post("http://"+addr+"/trace/start", "text/plain", nil)
		if err != nil {
			t.Fatalf("trace/start %s: %v", l, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trace/start %s: %s", l, resp.Status)
		}
	}

	for i := 0; i < 3; i++ {
		cliHost.Inject(msg.M(core.HdrSubmit, core.SubmitBody{Type: "deposit", Args: []any{int64(1), int64(5)}}))
		select {
		case res := <-results:
			if res.Aborted || res.Err != "" {
				t.Fatalf("tx %d failed: %+v", i, res)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("tx %d timed out", i)
		}
	}
	// The client takes the first answer; give the slower replicas a moment
	// to apply the tail before snapshotting the traces.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		caughtUp := true
		for _, r := range sys.Replicas {
			if r.Executor().Executed < 3 {
				caughtUp = false
			}
		}
		mu.Unlock()
		if caughtUp || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Metrics endpoint: the replica must have stepped and committed.
	var snap obs.Snapshot
	resp, err := http.Get("http://" + admins["r1"] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if snap.Counters["runtime.steps"] == 0 {
		t.Errorf("r1 reports no runtime steps: %v", snap.Counters)
	}

	// Download every node's trace and replay through the property registry.
	var traces [][]obs.Event
	for l, addr := range admins {
		resp, err := http.Get("http://" + addr + "/trace")
		if err != nil {
			t.Fatalf("trace %s: %v", l, err)
		}
		evs, err := obs.DecodeTrace(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatalf("decode trace %s: %v", l, err)
		}
		traces = append(traces, evs)
	}
	merged := obs.Merge(traces...)
	if len(merged) == 0 {
		t.Fatal("no trace events recorded")
	}
	if err := bridge.Check(merged, bridge.Options{Subscribers: rlocs}); err != nil {
		t.Fatalf("live trace failed bridge check: %v", err)
	}
}

// lockedProc serializes Step calls so the test can read replica state
// without racing the host goroutine.
type lockedProc struct {
	mu *sync.Mutex
	p  gpm.Process
}

func (l lockedProc) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next, outs := l.p.Step(in)
	return lockedProc{mu: l.mu, p: next}, outs
}

func (l lockedProc) Halted() bool { return l.p.Halted() }

// perNodeTraces splits a global trace into per-node downloads, re-assigning
// each node's Seq contiguously from zero — the shape a real collector sees
// when it pulls each node's ring buffer separately.
func perNodeTraces(events []obs.Event) map[string][]obs.Event {
	out := make(map[string][]obs.Event)
	for _, e := range events {
		n := string(e.Loc)
		e.Seq = int64(len(out[n]))
		out[n] = append(out[n], e)
	}
	return out
}

func TestBridgeTracesCleanRun(t *testing.T) {
	traces := perNodeTraces(seededSMREvents(t))
	s := bridge.SuiteTraces(traces, bridge.Options{})
	if got := len(s.Properties()); got != 5 {
		t.Fatalf("per-node suite has %d properties, want 5 (integrity + 4 runtime)", got)
	}
	if s.Properties()[0].Name != "trace/complete" {
		t.Fatalf("integrity property must run first, got %q", s.Properties()[0].Name)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("clean per-node traces failed bridge check: %v", err)
	}
}

func TestBridgeFlagsRingOverflow(t *testing.T) {
	traces := perNodeTraces(seededSMREvents(t))
	// Simulate a ring that overflowed before download: the oldest events
	// of one node were evicted, so its smallest Seq is no longer zero.
	// The replay must refuse to certify — a clean verdict over a trace
	// with missing evidence would be vacuous — rather than silently
	// checking what remains.
	var victim string
	for n, evs := range traces {
		if len(evs) > 3 {
			victim = n
			break
		}
	}
	if victim == "" {
		t.Fatal("no node recorded enough events to truncate")
	}
	traces[victim] = traces[victim][3:]
	err := bridge.CheckTraces(traces, bridge.Options{})
	if err == nil {
		t.Fatal("bridge certified an overflowed (incomplete) trace")
	}
	if !strings.Contains(err.Error(), "trace/complete") || !strings.Contains(err.Error(), "overflowed") {
		t.Errorf("unexpected failure shape: %v", err)
	}
	t.Logf("flagged: %v", err)
}
