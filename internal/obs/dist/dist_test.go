package dist_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/sqldb"
)

// seededSMREvents runs a deterministic SMR deployment (3 broadcast
// nodes, 3 co-located replicas, 2 clients) in the reference runner and
// returns the trace as obs events — the same fixture the bridge tests
// replay offline, here fed to the incremental checker.
func seededSMREvents(t *testing.T) []obs.Event {
	t.Helper()
	bnodes := []msg.Loc{"b1", "b2", "b3"}
	rlocs := []msg.Loc{"r1", "r2", "r3"}
	mkDB := func(slf msg.Loc) *sqldb.DB {
		db, err := sqldb.Open("h2:mem:" + string(slf))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.BankSetup(db, 20); err != nil {
			t.Fatal(err)
		}
		return db
	}
	sys := core.NewSMRSystem(bnodes, rlocs, core.BankRegistry(), mkDB)
	clients := map[msg.Loc]*core.Client{
		"c0": {Slf: "c0", Mode: core.ModeSMR, BcastNodes: bnodes, Retry: 200 * time.Millisecond},
		"c1": {Slf: "c1", Mode: core.ModeSMR, BcastNodes: bnodes, Retry: 200 * time.Millisecond},
	}
	done := 0
	extra := func(slf msg.Loc) gpm.Process {
		c, ok := clients[slf]
		if !ok {
			return gpm.Halt()
		}
		return core.ClientProc(c, func(core.TxResult) { done++ })
	}
	runner := gpm.NewRunner(sys.System([]msg.Loc{"c0", "c1"}, extra))
	submit := func(cli msg.Loc, typ string, args ...any) {
		want := done + 1
		runner.Inject(cli, msg.M(core.HdrSubmit, core.SubmitBody{Type: typ, Args: args}))
		ok, err := runner.RunUntil(2_000_000, func() bool { return done >= want })
		if err != nil || !ok {
			t.Fatalf("seeded %s did not complete: ok=%v err=%v", typ, ok, err)
		}
	}
	submit("c0", "deposit", 1, 10)
	submit("c1", "deposit", 2, 20)
	submit("c0", "balance", 1)
	if _, err := runner.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	return obs.FromGPM(runner.Trace())
}

func TestCheckerCleanOnSeededRun(t *testing.T) {
	events := seededSMREvents(t)
	ck := dist.NewChecker()
	ck.FeedAll(events)
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("Err on clean run: %v", err)
	}
	st := ck.Status()
	if st.Events != int64(len(events)) {
		t.Errorf("status events = %d, want %d", st.Events, len(events))
	}
	if st.Slots < 2 {
		t.Errorf("checker fingerprinted %d slots, want >= 2", st.Slots)
	}
	if st.Decided < 2 {
		t.Errorf("checker saw %d decided instances, want >= 2", st.Decided)
	}
}

// TestCheckerFlagsInjectedTotalOrderViolation is the ISSUE acceptance
// scenario: a deliberately injected total-order violation — one replica
// receives, for an already-fingerprinted slot, a batch different from
// what the other replicas received — must be detected by the online
// checker as the event is fed.
func TestCheckerFlagsInjectedTotalOrderViolation(t *testing.T) {
	events := seededSMREvents(t)
	// Find the LAST Deliver receive for a slot delivered to several
	// locations and corrupt its batch (a rogue transaction replaces the
	// agreed one). Earlier receipts of the slot establish the
	// fingerprint, so the corrupted receipt disagrees.
	seen := make(map[int]int)
	corrupt := -1
	for i, e := range events {
		if e.M == nil || e.M.Hdr != broadcast.HdrDeliver {
			continue
		}
		d, ok := e.M.Body.(broadcast.Deliver)
		if !ok {
			continue
		}
		if seen[d.Slot] > 0 {
			corrupt = i
		}
		seen[d.Slot]++
	}
	if corrupt < 0 {
		t.Fatal("trace has no slot delivered twice")
	}
	d := events[corrupt].M.Body.(broadcast.Deliver)
	rogue := append([]broadcast.Bcast(nil), d.Msgs...)
	rogue = append(rogue, broadcast.Bcast{From: "evil", Seq: 666})
	m := msg.M(broadcast.HdrDeliver, broadcast.Deliver{Slot: d.Slot, Msgs: rogue})
	events[corrupt].M = &m

	ck := dist.NewChecker()
	var hit *dist.Violation
	for _, e := range events {
		ck.Feed(e)
		if vs := ck.Violations(); hit == nil && len(vs) > 0 {
			v := vs[0]
			hit = &v
		}
	}
	if hit == nil {
		t.Fatal("online checker missed the injected total-order violation")
	}
	if hit.Property != "broadcast/total-order" {
		t.Fatalf("flagged %q, want broadcast/total-order (%v)", hit.Property, hit)
	}
	if hit.Loc != events[corrupt].Loc {
		t.Errorf("violation at %s, want %s", hit.Loc, events[corrupt].Loc)
	}
	if ck.Err() == nil || !strings.Contains(ck.Err().Error(), "total-order") {
		t.Errorf("Err() = %v", ck.Err())
	}
}

func TestCheckerFlagsReorderedDelivery(t *testing.T) {
	events := seededSMREvents(t)
	// Drop every receipt of slot 0 at one replica: its first delivery is
	// then a later slot — an in-order violation.
	victim := msg.Loc("")
	out := events[:0]
	for _, e := range events {
		if e.M != nil && e.M.Hdr == broadcast.HdrDeliver {
			d, ok := e.M.Body.(broadcast.Deliver)
			if ok && d.Slot == 0 && strings.HasPrefix(string(e.Loc), "r") {
				if victim == "" {
					victim = e.Loc
				}
				if e.Loc == victim {
					continue
				}
			}
		}
		out = append(out, e)
	}
	if victim == "" {
		t.Fatal("no replica received slot 0")
	}
	ck := dist.NewChecker()
	ck.FeedAll(out)
	found := false
	for _, v := range ck.Violations() {
		if v.Property == "broadcast/in-order-delivery" && v.Loc == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("gap at %s not flagged: %v", victim, ck.Violations())
	}
}

func TestCheckerFlagsUndeliveredAck(t *testing.T) {
	events := seededSMREvents(t)
	fake := msg.M(core.HdrTxResult, core.TxResult{Client: "c9", Seq: 99})
	events = append(events, obs.Event{
		Seq: int64(len(events)), At: events[len(events)-1].At + 1,
		Loc: "r1", Layer: obs.LayerRuntime, Kind: "step",
		Hdr: "noop", Slot: obs.NoField, Ballot: obs.NoField,
		M:    &msg.Msg{Hdr: "noop"},
		Outs: []msg.Directive{msg.Send("c9", fake)},
	})
	ck := dist.NewChecker()
	ck.FeedAll(events)
	found := false
	for _, v := range ck.Violations() {
		if v.Property == "shadowdb/durability" {
			found = true
		}
	}
	if !found {
		t.Fatalf("undelivered ack not flagged: %v", ck.Violations())
	}
}

func TestSpansSeededRun(t *testing.T) {
	events := seededSMREvents(t)
	spans := dist.Spans(events)
	if len(spans) < 3 {
		t.Fatalf("got %d spans, want >= 3 (one per submission)", len(spans))
	}
	complete := 0
	for _, s := range spans {
		b := s.Breakdown()
		if !b.Complete {
			continue
		}
		complete++
		if s.Slot < 0 {
			t.Errorf("complete span %s has no slot", s.ID)
		}
		if b.Total < b.Consensus {
			t.Errorf("span %s: total %v < consensus %v", s.ID, b.Total, b.Consensus)
		}
	}
	if complete < 3 {
		t.Fatalf("only %d complete spans: %+v", complete, spans)
	}

	// The segment summary and histogram recording agree on the count.
	segs := dist.SegmentSummary(spans)
	if segs["total"].Count != complete {
		t.Errorf("segment count %d, want %d", segs["total"].Count, complete)
	}
	o := obs.New(16)
	if got := dist.RecordSpans(o, spans); got != complete {
		t.Errorf("RecordSpans = %d, want %d", got, complete)
	}
	snap := o.Snapshot()
	h, ok := snap.Histograms["dist.span.total_ns"]
	if !ok || h.Count != int64(complete) {
		t.Errorf("dist.span.total_ns histogram = %+v, want count %d", h, complete)
	}
	for _, name := range []string{"dist.span.broadcast_ns", "dist.span.consensus_ns", "dist.span.apply_ns"} {
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("missing histogram %s", name)
		}
	}
}

func TestCollectorGatherMergeAndCheck(t *testing.T) {
	events := seededSMREvents(t)
	// Split the global trace into per-node rings (what each node's Obs
	// would hold), re-sequencing per node as a ring does.
	perNode := make(map[string][]obs.Event)
	for _, e := range events {
		n := string(e.Loc)
		e.Seq = int64(len(perNode[n]))
		perNode[n] = append(perNode[n], e)
	}
	c := dist.NewCollector()
	for n, t := range perNode {
		c.Add(n, t)
	}
	r := c.Collect()
	if len(r.Gaps) != 0 {
		t.Fatalf("unexpected gaps: %v", r.Gaps)
	}
	if len(r.Merged) != len(events) {
		t.Fatalf("merged %d events, want %d", len(r.Merged), len(events))
	}
	if len(r.Spans) < 3 || r.Segments["total"].Count < 3 {
		t.Fatalf("collector spans missing: %d spans, segments %+v", len(r.Spans), r.Segments)
	}
	vs, err := r.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("clean collection flagged: %v", vs)
	}
}

func TestCollectorFlagsRingGap(t *testing.T) {
	events := seededSMREvents(t)
	perNode := make(map[string][]obs.Event)
	for _, e := range events {
		n := string(e.Loc)
		e.Seq = int64(len(perNode[n]))
		perNode[n] = append(perNode[n], e)
	}
	c := dist.NewCollector()
	overflowed := ""
	for n, tr := range perNode {
		if overflowed == "" && len(tr) > 2 {
			// Simulate ring overflow: the oldest two events were evicted.
			overflowed = n
			tr = tr[2:]
		}
		c.Add(n, tr)
	}
	r := c.Collect()
	if r.Gaps[overflowed] != 2 {
		t.Fatalf("gap at %s = %d, want 2 (gaps %v)", overflowed, r.Gaps[overflowed], r.Gaps)
	}
	// An incomplete collection must refuse to certify the trace.
	if _, err := r.Check(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("Check on gapped trace: %v", err)
	}
}

func TestDistHandlerRoutes(t *testing.T) {
	o := obs.New(1024)
	o.EnableTracing(true)
	ck := dist.NewChecker()
	ck.Watch(o)
	for _, e := range seededSMREvents(t) {
		e.Seq = 0 // let Record assign
		o.Record(e)
	}
	srv, addr, err := dist.Serve("127.0.0.1:0", o, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var st dist.Status
	resp, err := http.Get("http://" + addr + "/checker")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/checker status %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Events == 0 || len(st.Violations) != 0 {
		t.Fatalf("checker status %+v", st)
	}

	var spans struct {
		Spans    []dist.Span                  `json:"spans"`
		Segments map[string]dist.SegmentStats `json:"segments"`
	}
	resp, err = http.Get("http://" + addr + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(spans.Spans) < 3 {
		t.Fatalf("/spans returned %d spans", len(spans.Spans))
	}

	// Base obs routes pass through.
	resp, err = http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %s", resp.Status)
	}

	// A violation turns /checker into a failing probe.
	ck.Feed(obs.Event{
		Loc: "rX", At: 1, Slot: obs.NoField, Ballot: obs.NoField,
		M: &msg.Msg{Hdr: broadcast.HdrDeliver, Body: broadcast.Deliver{Slot: 5, Msgs: nil}},
	})
	resp, err = http.Get("http://" + addr + "/checker")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("/checker with violations: status %s, want 409", resp.Status)
	}
}

// An announced restart excuses exactly one in-order-delivery gap: the
// node re-enters the slot stream at its catch-up frontier, and the next
// unannounced gap is flagged again.
func TestCheckerNoteRestart(t *testing.T) {
	ck := dist.NewChecker()
	deliver := func(loc msg.Loc, slot int) {
		ck.Feed(obs.Event{
			Loc: loc, At: int64(slot), Slot: obs.NoField, Ballot: obs.NoField,
			M: &msg.Msg{Hdr: broadcast.HdrDeliver, Body: broadcast.Deliver{Slot: slot, Msgs: nil}},
		})
	}
	deliver("r1", 0)
	deliver("r1", 1)

	// Crash + restart: the node resumes at slot 5 after recovering 2..4
	// locally. Without the announcement this is a gap.
	ck.NoteRestart("r1")
	deliver("r1", 5)
	if err := ck.Err(); err != nil {
		t.Fatalf("re-baselined delivery flagged: %v", err)
	}
	deliver("r1", 6)
	if err := ck.Err(); err != nil {
		t.Fatalf("contiguous delivery after re-baseline flagged: %v", err)
	}

	// The pass was consumed: a second gap without a restart is real.
	deliver("r1", 9)
	if err := ck.Err(); err == nil {
		t.Fatal("unannounced gap after restart not flagged")
	}

	// Other locations are unaffected by r1's restart.
	ck2 := dist.NewChecker()
	ck2.NoteRestart("r1")
	deliver2 := func(loc msg.Loc, slot int) {
		ck2.Feed(obs.Event{
			Loc: loc, At: int64(slot), Slot: obs.NoField, Ballot: obs.NoField,
			M: &msg.Msg{Hdr: broadcast.HdrDeliver, Body: broadcast.Deliver{Slot: slot, Msgs: nil}},
		})
	}
	deliver2("r2", 3)
	if err := ck2.Err(); err == nil {
		t.Fatal("r2's gap excused by r1's restart")
	}
}
