package dist

import (
	"sort"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/core"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Span is one client request's reconstructed path through the stack. All
// timestamps are trace-clock nanoseconds (wall or virtual, matching the
// recording Obs); zero means the stage was not observed in the trace.
type Span struct {
	// ID is the request's span key ("client/seq").
	ID string `json:"id"`
	// Slot is the broadcast slot that ordered the request (-1 unknown).
	Slot int64 `json:"slot"`
	// Submit is when the request first entered the system (its Bcast or
	// TxRequest arriving at a service node or replica).
	Submit int64 `json:"submit"`
	// Propose is when the slot carrying the request was first proposed to
	// consensus.
	Propose int64 `json:"propose"`
	// Decide is when consensus first decided that slot.
	Decide int64 `json:"decide"`
	// Deliver is when the ordered batch first reached a subscriber.
	Deliver int64 `json:"deliver"`
	// Reply is when a replica first emitted (or the client first
	// received) the request's TxResult.
	Reply int64 `json:"reply"`
}

// Breakdown is a span's per-segment latency split.
type Breakdown struct {
	// Broadcast is submit → consensus proposal (forwarding, batching).
	Broadcast time.Duration `json:"broadcast"`
	// Consensus is proposal → decide (the ordering protocol itself).
	Consensus time.Duration `json:"consensus"`
	// Apply is ordered delivery → reply (database execution).
	Apply time.Duration `json:"apply"`
	// Total is submit → reply.
	Total time.Duration `json:"total"`
	// Complete reports whether every stage was observed in order; the
	// segment values of an incomplete breakdown are meaningless.
	Complete bool `json:"complete"`
}

// Breakdown splits the span into its segments.
func (s Span) Breakdown() Breakdown {
	b := Breakdown{
		Broadcast: time.Duration(s.Propose - s.Submit),
		Consensus: time.Duration(s.Decide - s.Propose),
		Apply:     time.Duration(s.Reply - s.Deliver),
		Total:     time.Duration(s.Reply - s.Submit),
	}
	b.Complete = s.Submit > 0 && s.Propose >= s.Submit && s.Decide >= s.Propose &&
		s.Deliver >= s.Decide && s.Reply >= s.Deliver
	return b
}

// Spans reconstructs every request's span from a merged trace. Requests
// are linked to their broadcast slot through the Deliver batches that
// carried them; the slot then links them to the consensus propose/decide
// events, which do not name the request in their bodies.
func Spans(events []obs.Event) []Span {
	type slotTimes struct{ propose, decide, deliver int64 }
	slots := make(map[int64]*slotTimes)
	slotAt := func(slot int64) *slotTimes {
		st := slots[slot]
		if st == nil {
			st = &slotTimes{}
			slots[slot] = st
		}
		return st
	}
	first := func(cur *int64, at int64) {
		if *cur == 0 || at < *cur {
			*cur = at
		}
	}

	spanSlot := make(map[string]int64) // span key -> broadcast slot
	submit := make(map[string]int64)
	reply := make(map[string]int64)

	noteDeliver := func(d broadcast.Deliver, at int64) {
		st := slotAt(int64(d.Slot))
		first(&st.deliver, at)
		for _, b := range d.Msgs {
			key := string(b.From) + "/" + itoa(b.Seq)
			if _, ok := spanSlot[key]; !ok {
				spanSlot[key] = int64(d.Slot)
			}
		}
	}
	scan := func(m msg.Msg, at int64, received bool) {
		switch b := m.Body.(type) {
		case broadcast.Bcast:
			key := string(b.From) + "/" + itoa(b.Seq)
			first2(submit, key, at)
		case core.TxRequest:
			first2(submit, core.TxRequest{Client: b.Client, Seq: b.Seq}.Key(), at)
		case broadcast.Deliver:
			if received {
				noteDeliver(b, at)
			}
		case synod.Propose:
			first(&slotAt(int64(b.Inst)).propose, at)
		case twothird.Propose:
			first(&slotAt(int64(b.Inst)).propose, at)
		case synod.Decide:
			first(&slotAt(int64(b.Inst)).decide, at)
		case twothird.Decide:
			first(&slotAt(int64(b.Inst)).decide, at)
		case core.TxResult:
			first2(reply, core.TxRequest{Client: b.Client, Seq: b.Seq}.Key(), at)
		}
	}
	for _, e := range events {
		if e.M != nil {
			scan(*e.M, e.At, true)
		}
		for _, o := range e.Outs {
			scan(o.M, e.At, false)
		}
	}

	keys := make([]string, 0, len(spanSlot))
	for k := range spanSlot {
		keys = append(keys, k)
	}
	for k := range submit {
		if _, ok := spanSlot[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Span, 0, len(keys))
	for _, k := range keys {
		s := Span{ID: k, Slot: -1, Submit: submit[k], Reply: reply[k]}
		if slot, ok := spanSlot[k]; ok {
			s.Slot = slot
			if st := slots[slot]; st != nil {
				s.Propose, s.Decide, s.Deliver = st.propose, st.decide, st.deliver
			}
		}
		out = append(out, s)
	}
	return out
}

// RecordSpans observes every complete span's segments into o's latency
// histograms (dist.span.broadcast_ns, …consensus_ns, …apply_ns,
// …total_ns) and returns how many spans were complete — the hook that
// puts per-request breakdowns on a node's metrics endpoint.
func RecordSpans(o *obs.Obs, spans []Span) int {
	complete := 0
	hb := o.Histogram("dist.span.broadcast_ns")
	hc := o.Histogram("dist.span.consensus_ns")
	ha := o.Histogram("dist.span.apply_ns")
	ht := o.Histogram("dist.span.total_ns")
	for _, s := range spans {
		b := s.Breakdown()
		if !b.Complete {
			continue
		}
		complete++
		hb.ObserveDuration(b.Broadcast)
		hc.ObserveDuration(b.Consensus)
		ha.ObserveDuration(b.Apply)
		ht.ObserveDuration(b.Total)
	}
	return complete
}

// SegmentStats summarizes one segment's latencies exactly (the span count
// of a trace window is small, so sorting beats log-bucketing).
type SegmentStats struct {
	Count int   `json:"count"`
	Mean  int64 `json:"mean"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// SegmentSummary computes exact per-segment stats over the complete
// spans, keyed broadcast/consensus/apply/total (nanoseconds).
func SegmentSummary(spans []Span) map[string]SegmentStats {
	segs := map[string][]int64{}
	for _, s := range spans {
		b := s.Breakdown()
		if !b.Complete {
			continue
		}
		segs["broadcast"] = append(segs["broadcast"], int64(b.Broadcast))
		segs["consensus"] = append(segs["consensus"], int64(b.Consensus))
		segs["apply"] = append(segs["apply"], int64(b.Apply))
		segs["total"] = append(segs["total"], int64(b.Total))
	}
	out := make(map[string]SegmentStats, len(segs))
	for name, vs := range segs {
		out[name] = summarize(vs)
	}
	return out
}

func summarize(vs []int64) SegmentStats {
	if len(vs) == 0 {
		return SegmentStats{}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	var sum int64
	for _, v := range vs {
		sum += v
	}
	at := func(q float64) int64 {
		i := int(q * float64(len(vs)-1))
		return vs[i]
	}
	return SegmentStats{
		Count: len(vs),
		Mean:  sum / int64(len(vs)),
		P50:   at(0.50),
		P99:   at(0.99),
		Max:   vs[len(vs)-1],
	}
}

func itoa(n int64) string {
	// strconv-free fast path would be pointless here; keep it simple.
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func first2(m map[string]int64, k string, at int64) {
	if cur, ok := m[k]; !ok || at < cur {
		m[k] = at
	}
}
