package dist

import (
	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/flow"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Flow accounting: the overload properties. Every request a watched
// client submits opens a flow (keyed client/seq); an observed TxResult
// or flow.Reject addressed to that client closes it. At drain time
// FinishFlow flags every flow still open whose deadline has not passed
// — admitted work that simply vanished — as flow/terminal-outcome. A
// flow whose deadline HAS passed is excused: the client's own retry
// path deterministically declares the terminal deadline outcome
// locally, which produces no message for the checker to see.
//
// Every observed flow.Reject is additionally audited against the
// rejecting queue's self-reported coordinates (flow/queue-bound), and
// completions are bucketed into load phases the driving bench marks
// out with NoteFlowPhase, so CheckGoodputFloor can certify graceful
// degradation (flow/goodput-floor) from ordered evidence rather than
// from the bench's own bookkeeping.

// flowEntry is one open (submitted, unresolved) request.
type flowEntry struct {
	deadline int64
	phase    *FlowPhase
}

// FlowPhase is one marked load phase with its completion accounting.
// Requests credit the phase they were SUBMITTED in, so work spilling
// past a phase boundary still counts against the load that created it.
type FlowPhase struct {
	// Name is the bench's label for the phase (e.g. "1x", "16x").
	Name string `json:"name"`
	// From/To bound the phase on the trace clock (To set when the next
	// phase is marked, or by FinishFlow for the last one).
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Submitted counts distinct requests first submitted in the phase.
	Submitted int64 `json:"submitted"`
	// Completed counts successful results; Aborted counts unsuccessful
	// ones (including deterministic aborts and terminal overload
	// answers); Shed counts explicit flow.Reject answers.
	Completed int64 `json:"completed"`
	Aborted   int64 `json:"aborted"`
	Shed      int64 `json:"shed"`
}

// SetFlow enables the flow properties. maxQueue, when nonzero, pins
// the largest admission-queue bound configured anywhere in the
// deployment: a Reject reporting a bigger Cap means a queue was built
// outside the certified configuration. Call before feeding events.
func (c *Checker) SetFlow(maxQueue int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flowOn = true
	c.flowMax = maxQueue
	if c.flows == nil {
		c.flows = make(map[string]flowEntry)
		c.phaseIdx = make(map[string]*FlowPhase)
	}
}

// NoteFlowPhase marks the start of a named load phase at trace time
// at, closing the previous phase. Subsequent submissions credit the
// new phase.
func (c *Checker) NoteFlowPhase(name string, at int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.phases); n > 0 && c.phases[n-1].To == 0 {
		c.phases[n-1].To = at
	}
	p := &FlowPhase{Name: name, From: at}
	c.phases = append(c.phases, p)
	c.phaseIdx[name] = p
}

// FlowPhases snapshots the phase accounting (bench reports).
func (c *Checker) FlowPhases() []FlowPhase {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FlowPhase, len(c.phases))
	for i, p := range c.phases {
		out[i] = *p
	}
	return out
}

// OpenFlows counts submitted requests without an observed terminal
// outcome yet.
func (c *Checker) OpenFlows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flows)
}

// FinishFlow runs the drain check at trace time now: it closes the
// last phase and flags flow/terminal-outcome for every flow still open
// whose deadline has not passed (no deadline, or one still in the
// future — either way the request neither completed nor was rejected
// nor can the client have self-expired it).
func (c *Checker) FinishFlow(now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.phases); n > 0 && c.phases[n-1].To == 0 {
		c.phases[n-1].To = now
	}
	for _, key := range sortedFlowKeys(c.flows) {
		f := c.flows[key]
		if f.deadline > 0 && now >= f.deadline {
			continue // client self-declared the deadline outcome locally
		}
		c.flag(obs.Event{Loc: flowClient(key), At: now}, "flow/terminal-outcome",
			"request %s was submitted but reached no terminal outcome (deadline %d, drained at %d)",
			key, f.deadline, now)
	}
}

// CheckGoodputFloor certifies graceful degradation: the completion
// rate of phase load must be at least floor times the completion rate
// of phase base. A violation is flagged as flow/goodput-floor; the
// comparison is skipped (no flag) when either phase is unknown or has
// a degenerate window.
func (c *Checker) CheckGoodputFloor(base, load string, floor float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bp, lp := c.phaseIdx[base], c.phaseIdx[load]
	if bp == nil || lp == nil || bp.To <= bp.From || lp.To <= lp.From {
		return
	}
	baseRate := float64(bp.Completed) / float64(bp.To-bp.From)
	loadRate := float64(lp.Completed) / float64(lp.To-lp.From)
	if loadRate < floor*baseRate {
		c.flag(obs.Event{Loc: "checker", At: lp.To}, "flow/goodput-floor",
			"phase %q completed %.3g/s, below %.0f%% of phase %q's %.3g/s — overload collapsed goodput instead of degrading it",
			load, loadRate*1e9, floor*100, base, baseRate*1e9)
	}
}

// flowOutgoing folds one outgoing directive into the flow accounting
// (callers hold mu and have checked flowOn).
func (c *Checker) flowOutgoing(e obs.Event, o msg.Directive) {
	switch b := o.M.Body.(type) {
	case broadcast.Bcast:
		// A Bcast leaving its own originator with a transaction payload
		// is a client submission; forwards and 2PC/control records are
		// not (wrong origin or non-tx payload).
		if o.M.Hdr != broadcast.HdrBcast || b.From != e.Loc {
			return
		}
		if _, err := core.DecodeTx(b.Payload); err != nil {
			return
		}
		c.openFlow(string(b.From)+"/"+itoa(b.Seq), b.Deadline)
	case core.TxRequest:
		if o.M.Hdr == core.HdrTx && b.Client == e.Loc {
			c.openFlow(b.Key(), b.Deadline)
		}
	case flow.Reject:
		if o.M.Hdr != flow.HdrReject {
			return
		}
		// flow/queue-bound: the rejecting queue reports its own
		// occupancy and bound; occupancy over the bound (or a bound over
		// the certified configuration) means admission accounting leaked.
		if b.Cap > 0 && b.Depth > b.Cap {
			c.flag(e, "flow/queue-bound",
				"%s rejected %d with queue depth %d over its bound %d", e.Loc, b.Seq, b.Depth, b.Cap)
		}
		if c.flowMax > 0 && b.Cap > c.flowMax {
			c.flag(e, "flow/queue-bound",
				"%s reports a queue bound %d above the configured maximum %d", e.Loc, b.Cap, c.flowMax)
		}
		c.closeFlow(string(o.Dest)+"/"+itoa(b.Seq), false, true)
	case core.TxResult:
		if o.M.Hdr == core.HdrTxResult {
			c.closeFlow(string(b.Client)+"/"+itoa(b.Seq), !b.Aborted && b.Err == "", false)
		}
	}
}

// openFlow records a submission (idempotent across retransmissions:
// the first open fixes the crediting phase).
func (c *Checker) openFlow(key string, deadline int64) {
	if _, open := c.flows[key]; open {
		return
	}
	var p *FlowPhase
	if n := len(c.phases); n > 0 {
		p = c.phases[n-1]
	}
	c.flows[key] = flowEntry{deadline: deadline, phase: p}
	if p != nil {
		p.Submitted++
	}
}

// closeFlow resolves a flow with an observed terminal outcome. Late
// duplicates (retransmitted results for an already-closed flow) are
// ignored so retries do not double-count completions.
func (c *Checker) closeFlow(key string, completed, shed bool) {
	f, open := c.flows[key]
	if !open {
		return
	}
	delete(c.flows, key)
	if f.phase == nil {
		return
	}
	switch {
	case shed:
		f.phase.Shed++
	case completed:
		f.phase.Completed++
	default:
		f.phase.Aborted++
	}
}

// flowClient extracts the client location from a flow key.
func flowClient(key string) msg.Loc {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return msg.Loc(key[:i])
		}
	}
	return msg.Loc(key)
}

// sortedFlowKeys orders the open-flow map for deterministic flagging.
func sortedFlowKeys(m map[string]flowEntry) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
