package dist_test

import (
	"sync"
	"testing"
	"time"

	"shadowdb/internal/core"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/runtime"
	"shadowdb/internal/sqldb"

	"shadowdb/internal/broadcast"
)

// TestOnlineCheckerLiveCluster is the CI gate: a 3-node in-process SMR
// cluster runs a write workload with the online checker subscribed to
// every node's live event stream. The build fails if the checker flags
// any violation. It also exercises the whole tentpole path: trace IDs
// and Lamport clocks propagate through the transport, the collector
// gathers and causally merges every node's ring, and per-request span
// breakdowns come out of the merge.
func TestOnlineCheckerLiveCluster(t *testing.T) {
	bnodes := []msg.Loc{"b1", "b2", "b3"}
	rlocs := []msg.Loc{"r1", "r2", "r3"}

	hub := network.NewHub()
	// Registered before the hosts' cleanup so it runs after them (LIFO):
	// each host closes its own transport, which deregisters it; closing
	// the hub first would double-close the inboxes.
	t.Cleanup(func() { hub.Close() })

	mkDB := func(slf msg.Loc) *sqldb.DB {
		db, err := sqldb.Open("h2:mem:" + string(slf))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.BankSetup(db, 10); err != nil {
			t.Fatal(err)
		}
		return db
	}
	sys := core.NewSMRSystem(bnodes, rlocs, core.BankRegistry(), mkDB)
	bgen := broadcast.Spec(sys.Bcast).Generator()

	checker := dist.NewChecker()
	obses := make(map[string]*obs.Obs)
	var hosts []*runtime.Host
	t.Cleanup(func() {
		for _, h := range hosts {
			_ = h.Close()
		}
	})
	spawn := func(l msg.Loc, p gpm.Process) *runtime.Host {
		tr, err := hub.Register(l)
		if err != nil {
			t.Fatal(err)
		}
		h := runtime.NewHost(l, tr, p)
		h.Obs = obs.New(8192)
		h.Obs.EnableTracing(true)
		checker.Watch(h.Obs)
		obses[string(l)] = h.Obs
		h.Start()
		hosts = append(hosts, h)
		return h
	}
	for _, l := range bnodes {
		spawn(l, bgen(l))
	}
	var mu sync.Mutex
	for _, l := range rlocs {
		spawn(l, lockedProc{mu: &mu, p: sys.Replicas[l]})
	}
	results := make(chan core.TxResult, 64)
	cli := &core.Client{Slf: "cli", Mode: core.ModeSMR, BcastNodes: bnodes, Retry: 500 * time.Millisecond}
	cliHost := spawn("cli", core.ClientProc(cli, func(r core.TxResult) { results <- r }))

	const txs = 8
	for i := 0; i < txs; i++ {
		cliHost.Inject(msg.M(core.HdrSubmit, core.SubmitBody{Type: "deposit", Args: []any{int64(1 + i%5), int64(7)}}))
		select {
		case res := <-results:
			if res.Aborted || res.Err != "" {
				t.Fatalf("tx %d failed: %+v", i, res)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("tx %d timed out", i)
		}
	}
	// The client takes the first answer; wait for the slower replicas to
	// apply the tail so every span's stages are on record.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		caughtUp := true
		for _, r := range sys.Replicas {
			if r.Executor().Executed < txs {
				caughtUp = false
			}
		}
		mu.Unlock()
		if caughtUp || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The online checker ran during the load: it must have consumed the
	// cluster's events and flagged nothing.
	st := checker.Status()
	if st.Events == 0 {
		t.Fatal("online checker saw no events — sinks not wired")
	}
	if st.Slots < txs {
		t.Errorf("checker fingerprinted %d slots, want >= %d", st.Slots, txs)
	}
	if len(st.Violations) != 0 {
		t.Fatalf("online checker flagged a live violation: %v", st.Violations)
	}

	// Collector path: gather every node's ring, merge causally, rebuild
	// request spans.
	c := dist.NewCollector()
	c.Gather(obses)
	r := c.Collect()
	if len(r.Gaps) != 0 {
		t.Fatalf("ring overflow during a small run: %v", r.Gaps)
	}
	if len(r.Merged) == 0 {
		t.Fatal("no events collected")
	}
	// Every recorded event must carry a Lamport stamp (the merge is
	// causal, not wall-clock), and traced events must carry the request's
	// trace ID once one is born.
	traced := 0
	for _, e := range r.Merged {
		if e.LC <= 0 {
			t.Fatalf("unstamped event in live trace: %+v", e)
		}
		if e.Trace != "" {
			traced++
		}
	}
	if traced == 0 {
		t.Fatal("no event carries a trace ID")
	}
	// The causal merge must respect per-request causality: for each span,
	// the first submit event precedes the first reply event in the merge.
	firstIdx := func(pred func(obs.Event) bool) int {
		for i, e := range r.Merged {
			if pred(e) {
				return i
			}
		}
		return -1
	}
	subIdx := firstIdx(func(e obs.Event) bool { return e.M != nil && e.M.Hdr == core.HdrSubmit })
	repIdx := firstIdx(func(e obs.Event) bool { return e.M != nil && e.M.Hdr == core.HdrTxResult })
	if subIdx < 0 || repIdx < 0 || subIdx > repIdx {
		t.Fatalf("causal merge misordered submit (%d) and reply (%d)", subIdx, repIdx)
	}

	complete := 0
	for _, s := range r.Spans {
		if s.Breakdown().Complete {
			complete++
		}
	}
	if complete < txs {
		t.Fatalf("%d complete spans, want >= %d: %+v", complete, txs, r.Spans)
	}
	for _, seg := range []string{"broadcast", "consensus", "apply", "total"} {
		if r.Segments[seg].Count < txs {
			t.Errorf("segment %s count = %d, want >= %d", seg, r.Segments[seg].Count, txs)
		}
	}

	// Offline replay of the collection agrees with the online verdict.
	vs, err := r.Check()
	if err != nil {
		t.Fatalf("collection check: %v", err)
	}
	if len(vs) != 0 {
		t.Fatalf("offline replay flagged: %v", vs)
	}
}

// lockedProc serializes Step calls so the test can read replica state
// without racing the host goroutine.
type lockedProc struct {
	mu *sync.Mutex
	p  gpm.Process
}

func (l lockedProc) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next, outs := l.p.Step(in)
	return lockedProc{mu: l.mu, p: next}, outs
}

func (l lockedProc) Halted() bool { return l.p.Halted() }
