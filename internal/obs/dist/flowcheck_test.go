package dist_test

import (
	"strings"
	"testing"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/flow"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
)

// flowEvent wraps one outgoing directive as a minimal checker event at
// loc — the shape the flow accounting consumes.
func flowEvent(at int64, loc msg.Loc, out msg.Directive) obs.Event {
	m := msg.M("noop", nil)
	return obs.Event{
		Seq: at, At: at, Loc: loc, Layer: obs.LayerRuntime, Kind: "step",
		Hdr: "noop", Slot: obs.NoField, Ballot: obs.NoField,
		M: &m, Outs: []msg.Directive{out},
	}
}

// submitEvent is a client submitting a transaction as a broadcast.
func submitEvent(t *testing.T, at int64, cli msg.Loc, seq, deadline int64) obs.Event {
	t.Helper()
	pay, err := core.EncodeTx(core.TxRequest{Client: cli, Seq: seq, Type: "deposit", Args: []any{1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	return flowEvent(at, cli, msg.Send("b1", msg.M(broadcast.HdrBcast,
		broadcast.Bcast{From: cli, Seq: seq, Payload: pay, Deadline: deadline})))
}

// resultEvent is a replica answering a client request.
func resultEvent(at int64, cli msg.Loc, seq int64, aborted bool) obs.Event {
	return flowEvent(at, "r1", msg.Send(cli, msg.M(core.HdrTxResult,
		core.TxResult{Client: cli, Seq: seq, Aborted: aborted})))
}

func TestCheckerFlowTerminalOutcome(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetFlow(8)
	ck.Feed(submitEvent(t, 1, "c0", 1, 0))   // answered below
	ck.Feed(submitEvent(t, 2, "c0", 2, 0))   // vanishes — must be flagged
	ck.Feed(submitEvent(t, 3, "c0", 3, 500)) // vanishes but deadline passes — excused
	ck.Feed(resultEvent(4, "c0", 1, false))
	if n := ck.OpenFlows(); n != 2 {
		t.Fatalf("open flows = %d, want 2", n)
	}
	ck.FinishFlow(1000)
	vs := ck.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly one", vs)
	}
	if vs[0].Property != "flow/terminal-outcome" || !strings.Contains(vs[0].Detail, "c0/2") {
		t.Fatalf("flagged %+v, want flow/terminal-outcome for c0/2", vs[0])
	}
}

func TestCheckerFlowRejectClosesAndAudits(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetFlow(8)
	ck.Feed(submitEvent(t, 1, "c0", 1, 0))
	// A well-formed rejection closes the flow as shed: no violation.
	ck.Feed(flowEvent(2, "b1", msg.Send("c0", msg.M(flow.HdrReject,
		flow.Reject{From: "b1", Seq: 1, Class: flow.ClassWrite, Reason: flow.ReasonOverload, Depth: 8, Cap: 8}))))
	ck.FinishFlow(100)
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("clean shed flagged: %v", vs)
	}

	// Depth over the queue's own bound, and a bound over the configured
	// maximum, are both admission-accounting leaks.
	ck2 := dist.NewChecker()
	ck2.SetFlow(8)
	ck2.Feed(flowEvent(1, "b1", msg.Send("c0", msg.M(flow.HdrReject,
		flow.Reject{From: "b1", Seq: 1, Reason: flow.ReasonOverload, Depth: 9, Cap: 8}))))
	ck2.Feed(flowEvent(2, "b1", msg.Send("c0", msg.M(flow.HdrReject,
		flow.Reject{From: "b1", Seq: 2, Reason: flow.ReasonOverload, Depth: 3, Cap: 16}))))
	vs := ck2.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %v, want two flow/queue-bound", vs)
	}
	for _, v := range vs {
		if v.Property != "flow/queue-bound" {
			t.Fatalf("flagged %+v, want flow/queue-bound", v)
		}
	}
}

func TestCheckerGoodputFloor(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetFlow(8)
	ck.NoteFlowPhase("1x", 0)
	for i := int64(1); i <= 4; i++ {
		ck.Feed(submitEvent(t, i, "c0", i, 0))
		ck.Feed(resultEvent(i+10, "c0", i, false))
	}
	ck.NoteFlowPhase("16x", 100)
	// Same window length, one completion vs four: 25% goodput.
	ck.Feed(submitEvent(t, 101, "c0", 50, 0))
	ck.Feed(resultEvent(110, "c0", 50, false))
	ck.Feed(submitEvent(t, 102, "c0", 51, 190))
	ck.FinishFlow(200)
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("drain flagged unexpectedly: %v", vs)
	}

	ck.CheckGoodputFloor("1x", "16x", 0.2) // 25% >= 20%: holds
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("floor 0.2 flagged: %v", vs)
	}
	ck.CheckGoodputFloor("1x", "16x", 0.6) // 25% < 60%: violated
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Property != "flow/goodput-floor" {
		t.Fatalf("violations = %v, want one flow/goodput-floor", vs)
	}

	phases := ck.FlowPhases()
	if len(phases) != 2 {
		t.Fatalf("phases = %+v, want 2", phases)
	}
	if p := phases[0]; p.Name != "1x" || p.Submitted != 4 || p.Completed != 4 || p.To != 100 {
		t.Errorf("phase 1x = %+v", p)
	}
	if p := phases[1]; p.Submitted != 2 || p.Completed != 1 || p.To != 200 {
		t.Errorf("phase 16x = %+v", p)
	}
}

func TestCheckerFlowDedupesRetransmissions(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetFlow(8)
	ck.NoteFlowPhase("p", 0)
	ck.Feed(submitEvent(t, 1, "c0", 1, 0))
	ck.Feed(submitEvent(t, 2, "c0", 1, 0)) // client retransmission
	ck.Feed(resultEvent(3, "c0", 1, false))
	ck.Feed(resultEvent(4, "c0", 1, false)) // duplicate answer
	ck.FinishFlow(100)
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("retransmissions flagged: %v", vs)
	}
	p := ck.FlowPhases()[0]
	if p.Submitted != 1 || p.Completed != 1 {
		t.Fatalf("phase = %+v, want Submitted=1 Completed=1", p)
	}
}

// TestCheckerFlowCleanOnSeededRun feeds the reference SMR trace with the
// flow properties armed: a healthy run must not trip them, and every
// submission must resolve.
func TestCheckerFlowCleanOnSeededRun(t *testing.T) {
	events := seededSMREvents(t)
	ck := dist.NewChecker()
	ck.SetFlow(0)
	ck.FeedAll(events)
	last := events[len(events)-1].At
	ck.FinishFlow(last + 1)
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("seeded run flagged: %v", vs)
	}
	if n := ck.OpenFlows(); n != 0 {
		t.Fatalf("open flows after drain = %d, want 0", n)
	}
}
