// Package dist is the cross-node half of the observability subsystem: it
// correlates the per-node trace rings of a whole deployment into one
// causal picture and checks it, live, against the formal properties.
//
//   - a Collector pulls trace rings from every node's admin endpoint (or
//     takes them straight from in-process / simulated nodes), flags rings
//     that overflowed mid-run, and merges the downloads into one causally
//     ordered trace via the Lamport stamps the envelopes carry;
//   - Spans reconstructs each client request's path through the stack
//     (client submit → broadcast → consensus decide → ordered delivery →
//     reply) and reports per-segment latencies;
//   - a Checker subscribes to live event streams and incrementally
//     evaluates the runtime properties of the verify registry (broadcast
//     total order, in-order delivery, single-value-per-slot, durability),
//     flagging violations as events arrive instead of via offline replay.
//
// This is the runtime-checking posture of "Specification and Runtime
// Checking of Derecho" applied to the causal-history checking of
// "Verifying Strong Eventual Consistency": global properties of the
// replicated database are watched continuously under traffic, not only
// in bounded model checking.
//
// # Invariants
//
// The Checker holds one shadow copy of the protocol state per node and
// evaluates, incrementally:
//
//   - total order: the first batch fingerprint seen for a slot is the
//     only one any node may deliver for that slot (per invariant
//     group — one group per shard in sharded deployments);
//   - gap-free in-order delivery per node;
//   - single decided value per consensus instance;
//   - durability: a node acknowledges a client only for transactions
//     it received through an ordered path — live delivery, journal
//     catch-up (SMRCatchup), or state transfer (SnapEnd carries the
//     re-ackable results) — never from thin air;
//   - epoch-config agreement: every node's derived membership schedule
//     assigns the same meaning to each epoch;
//   - lease exclusivity and staleness: at most one valid holder per
//     lease window, reads stamped with a renewal issue time no staler
//     than the mode's bound (DESIGN.md §13).
//
// The checker operates on broadcast.Deliver bodies — post-batching,
// pre-unpacking — so the adaptive batching and pipelining of DESIGN.md
// §8 is checked transparently: a multi-message slot is compared whole
// across nodes, and the batch ablation (`cmd/bench -experiment batch`)
// certifies every sweep point against it.
//
// # Concurrency
//
// The Checker is safe for concurrent feeding: events from any number
// of per-node streams serialize on one internal mutex, and Violations
// / Status return snapshots. Registered hooks (violation callbacks)
// are guarded separately and must not block — they run on the feeding
// goroutine. The Collector performs its ring downloads concurrently
// but merge and span reconstruction are single-goroutine, offline
// steps over the collected data.
package dist
