package dist

import (
	"encoding/json"
	"net"
	"net/http"

	"shadowdb/internal/obs"
)

// Handler extends a node's obs admin mux with the online checker's
// routes:
//
//	GET /checker   checker status (events fed, slots, violations)
//	GET /spans     per-request span breakdowns over the node's own ring
//
// Everything obs.Handler serves (/metrics, /trace, /trace.json, trace
// control, /logs, /healthz, pprof) passes through unchanged, so a node
// that enables online checking keeps the same admin surface plus the two
// checker routes. HandlerWith additionally passes a flight Recorder
// through to obs.HandlerWith for the /flight routes.
func Handler(o *obs.Obs, c *Checker) http.Handler { return HandlerWith(o, c, nil) }

// HandlerWith is Handler plus the /flight routes when rec is non-nil.
func HandlerWith(o *obs.Obs, c *Checker, rec *obs.Recorder) http.Handler {
	base := obs.HandlerWith(o, rec)
	mux := http.NewServeMux()
	mux.Handle("/", base)
	mux.HandleFunc("/checker", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := c.Status()
		if len(st.Violations) > 0 {
			// A violated invariant is a failed health check: surface it in
			// the status code so probes and CI can poll without parsing.
			w.WriteHeader(http.StatusConflict)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := Spans(obs.MergeCausal(o.Events()))
		out := struct {
			Spans    []Span                  `json:"spans"`
			Segments map[string]SegmentStats `json:"segments"`
		}{spans, SegmentSummary(spans)}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	return mux
}

// Serve starts the extended admin endpoint on addr (":0" for ephemeral)
// and returns the server plus the bound address; the caller owns Close.
func Serve(addr string, o *obs.Obs, c *Checker) (*http.Server, string, error) {
	return ServeWith(addr, o, c, nil)
}

// ServeWith is Serve with a flight Recorder behind /flight.
func ServeWith(addr string, o *obs.Obs, c *Checker, rec *obs.Recorder) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: HandlerWith(o, c, rec)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
