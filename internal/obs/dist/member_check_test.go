package dist_test

import (
	"testing"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
)

// mDeliver builds a checker event for loc receiving one ordered batch
// in slot.
func mDeliver(loc msg.Loc, slot int, msgs []broadcast.Bcast) obs.Event {
	return obs.Event{
		Loc: loc, At: int64(slot), Slot: obs.NoField, Ballot: obs.NoField,
		M: &msg.Msg{Hdr: broadcast.HdrDeliver, Body: broadcast.Deliver{Slot: slot, Msgs: msgs}},
	}
}

// Back-to-back restarts inside one excuse window: the second
// announcement before any re-entry delivery collapses into the first —
// the node still gets exactly one re-baseline, and the next unannounced
// gap is flagged.
func TestCheckerNoteRestartBackToBack(t *testing.T) {
	ck := dist.NewChecker()
	ck.Feed(mDeliver("r1", 0, nil))
	ck.Feed(mDeliver("r1", 1, nil))

	ck.NoteRestart("r1")
	ck.NoteRestart("r1") // crashed again before delivering anything
	ck.Feed(mDeliver("r1", 6, nil))
	if err := ck.Err(); err != nil {
		t.Fatalf("re-entry after back-to-back restarts flagged: %v", err)
	}

	// Both announcements were spent on the single re-entry: a second
	// jump without a new announcement is a real gap.
	ck.Feed(mDeliver("r1", 9, nil))
	if err := ck.Err(); err == nil {
		t.Fatal("gap after consumed back-to-back excuse not flagged")
	}
}

// A restart concurrent with a partition heal: the healing links flush
// duplicates of slots the node already delivered before the node
// re-enters the stream. The duplicates must not consume the restart
// excuse, and the eventual re-entry jump must not be flagged.
func TestCheckerNoteRestartAcrossPartitionHeal(t *testing.T) {
	ck := dist.NewChecker()
	ck.Feed(mDeliver("r1", 0, nil))
	ck.Feed(mDeliver("r1", 1, nil))
	ck.Feed(mDeliver("r1", 2, nil))

	ck.NoteRestart("r1")
	// Heal flushes re-sends of old slots first (several service nodes
	// notify the same subscriber; the restarted node sees stale copies).
	ck.Feed(mDeliver("r1", 1, nil))
	ck.Feed(mDeliver("r1", 2, nil))
	if err := ck.Err(); err != nil {
		t.Fatalf("duplicate deliveries after restart flagged: %v", err)
	}
	// The actual re-entry, past the slots recovered from the journal.
	ck.Feed(mDeliver("r1", 8, nil))
	if err := ck.Err(); err != nil {
		t.Fatalf("re-entry after heal-time duplicates flagged: %v", err)
	}
	// Excuse consumed: the next jump is real.
	ck.Feed(mDeliver("r1", 12, nil))
	if err := ck.Err(); err == nil {
		t.Fatal("gap after consumed excuse not flagged")
	}
}

// Restarting the node whose deliveries established the checker's batch
// fingerprints must not reset cross-node state: fingerprints recorded
// before the restart still bind every other node, and the restarted
// feed node itself is re-checked against them after its re-entry.
func TestCheckerNoteRestartOfFeedNode(t *testing.T) {
	batch := func(from msg.Loc, seq int64) []broadcast.Bcast {
		return []broadcast.Bcast{{From: from, Seq: seq}}
	}
	ck := dist.NewChecker()
	// r1 is the first deliverer everywhere: it establishes the
	// fingerprint for slots 0 and 1.
	ck.Feed(mDeliver("r1", 0, batch("c0", 1)))
	ck.Feed(mDeliver("r1", 1, batch("c0", 2)))
	ck.Feed(mDeliver("r2", 0, batch("c0", 1)))

	ck.NoteRestart("r1")
	ck.Feed(mDeliver("r1", 3, batch("c1", 7)))
	if err := ck.Err(); err != nil {
		t.Fatalf("feed node re-entry flagged: %v", err)
	}

	// Slot 1's fingerprint survived r1's restart: r2 disagreeing with it
	// is still a total-order violation.
	ck.Feed(mDeliver("r2", 1, batch("cX", 99)))
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Property != "broadcast/total-order" {
		t.Fatalf("pre-restart fingerprint not enforced: %v", vs)
	}
}

// NoteJoin excuses the joiner's mid-stream first delivery and keeps its
// partial command history out of the per-location epoch derivation.
func TestCheckerNoteJoin(t *testing.T) {
	initial := member.Config{
		Bcast:    []msg.Loc{"b1", "b2", "b3"},
		Replicas: []msg.Loc{"r1", "r2", "r3"},
	}
	cmdA := broadcast.Bcast{From: "admin", Seq: 1, Payload: member.EncodeCommand(member.Command{Op: member.AddAcceptor, Node: "b4"})}
	cmdB := broadcast.Bcast{From: "admin", Seq: 2, Payload: member.EncodeCommand(member.Command{Op: member.AddReplica, Node: "r4"})}

	ck := dist.NewChecker()
	ck.SetMembership(initial, 4)
	ck.Feed(mDeliver("r1", 0, []broadcast.Bcast{cmdA}))
	ck.Feed(mDeliver("r1", 1, []broadcast.Bcast{cmdB}))

	// r4 joins and re-enters at slot 1: it sees cmdB but never saw cmdA.
	// Deriving from its partial history would yield a conflicting epoch
	// config; NoteJoin must suppress exactly that.
	ck.NoteJoin("r4")
	ck.Feed(mDeliver("r4", 1, []broadcast.Bcast{cmdB}))
	ck.Feed(mDeliver("r4", 2, nil))
	if err := ck.Err(); err != nil {
		t.Fatalf("joiner deliveries flagged: %v", err)
	}

	// The joiner is held to the gap-free order after its re-entry.
	ck.Feed(mDeliver("r4", 5, nil))
	if err := ck.Err(); err == nil {
		t.Fatal("joiner gap after bootstrap not flagged")
	}
}

// member/epoch-config: a node that folds the agreed command stream into
// a different configuration for an epoch is caught even when the batch
// identity (sender/sequence) matches what everyone else delivered.
func TestCheckerEpochConfigConflict(t *testing.T) {
	initial := member.Config{
		Bcast:    []msg.Loc{"b1", "b2", "b3"},
		Replicas: []msg.Loc{"r1", "r2", "r3"},
	}
	good := broadcast.Bcast{From: "admin", Seq: 1, Payload: member.EncodeCommand(member.Command{Op: member.AddAcceptor, Node: "b4"})}
	// Same batch identity, different command: batchFingerprint cannot
	// tell them apart, the epoch derivation can.
	evil := broadcast.Bcast{From: "admin", Seq: 1, Payload: member.EncodeCommand(member.Command{Op: member.AddAcceptor, Node: "b9"})}

	ck := dist.NewChecker()
	ck.SetMembership(initial, 4)
	ck.Feed(mDeliver("r1", 0, []broadcast.Bcast{good}))
	ck.Feed(mDeliver("r2", 0, []broadcast.Bcast{good}))
	if err := ck.Err(); err != nil {
		t.Fatalf("agreeing derivations flagged: %v", err)
	}
	ck.Feed(mDeliver("r3", 0, []broadcast.Bcast{evil}))
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Property != "member/epoch-config" {
		t.Fatalf("conflicting epoch config not flagged: %v", vs)
	}
}

// member/stale-quorum: a Decide certified by a majority of a superseded
// acceptor set — but not of the epoch governing the instance — is
// flagged; a certificate that satisfies the governing epoch is not.
func TestCheckerStaleQuorum(t *testing.T) {
	initial := member.Config{
		Bcast:    []msg.Loc{"b1", "b2", "b3"},
		Replicas: []msg.Loc{"r1", "r2", "r3"},
	}
	add := broadcast.Bcast{From: "admin", Seq: 1, Payload: member.EncodeCommand(member.Command{Op: member.AddAcceptor, Node: "b4"})}
	bal := synod.Ballot{N: 1, L: "b1"}
	p2b := func(from msg.Loc, inst int) obs.Event {
		return obs.Event{
			Loc: "b1", At: 1, Slot: obs.NoField, Ballot: obs.NoField,
			M: &msg.Msg{Hdr: synod.HdrP2b, Body: synod.P2b{From: from, B: bal, Inst: inst}},
		}
	}
	decide := func(inst int) obs.Event {
		return obs.Event{
			Loc: "b1", At: 2, Slot: obs.NoField, Ballot: obs.NoField,
			M: &msg.Msg{Hdr: synod.HdrWake, Body: synod.Wake{}},
			Outs: []msg.Directive{
				msg.Send("r1", msg.M(synod.HdrDecide, synod.Decide{Inst: inst, Val: "v"})),
			},
		}
	}

	ck := dist.NewChecker()
	ck.SetMembership(initial, 4)
	// The add-acceptor command lands in slot 0: epoch 1 ({b1..b4},
	// majority 3) governs instances from slot 4 on.
	ck.Feed(mDeliver("r1", 0, []broadcast.Bcast{add}))

	// Instance 10 decided off two old-set acks: majority of {b1,b2,b3},
	// not of the governing four.
	ck.Feed(p2b("b1", 10))
	ck.Feed(p2b("b2", 10))
	ck.Feed(decide(10))
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Property != "member/stale-quorum" {
		t.Fatalf("stale quorum not flagged: %v", vs)
	}

	// Instance 11 certified by three of epoch 1's four acceptors: clean.
	ck2 := dist.NewChecker()
	ck2.SetMembership(initial, 4)
	ck2.Feed(mDeliver("r1", 0, []broadcast.Bcast{add}))
	for _, a := range []msg.Loc{"b1", "b2", "b4"} {
		ck2.Feed(p2b(a, 11))
	}
	ck2.Feed(decide(11))
	if err := ck2.Err(); err != nil {
		t.Fatalf("valid epoch-1 quorum flagged: %v", err)
	}

	// Instances before the activation slot are still governed by epoch
	// 0: two of three old acceptors suffice.
	ck3 := dist.NewChecker()
	ck3.SetMembership(initial, 4)
	ck3.Feed(mDeliver("r1", 0, []broadcast.Bcast{add}))
	ck3.Feed(p2b("b2", 2))
	ck3.Feed(p2b("b3", 2))
	ck3.Feed(decide(2))
	if err := ck3.Err(); err != nil {
		t.Fatalf("epoch-0 quorum before activation flagged: %v", err)
	}
}
