package dist

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/consensus/synod"
	"shadowdb/internal/consensus/twothird"
	"shadowdb/internal/core"
	"shadowdb/internal/member"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/shard"
)

// Checker evaluates the runtime properties of the verify registry
// incrementally, one event at a time, instead of replaying a finished
// trace through obs/bridge. Wire it to a live Obs with Watch and every
// recorded step is checked within that step — a violation surfaces on
// the admin endpoint while the run is still going, bounded by the event
// fan-out path rather than by a collection interval.
//
// The properties mirror bridge exactly:
//
//	broadcast/total-order        same slot ⇒ same batch, across all nodes
//	broadcast/in-order-delivery  per node, slots arrive gap-free ascending
//	consensus/single-value-per-slot  one decided value per instance
//	shadowdb/durability          replies name previously delivered txs
//	shard/cross-atomicity        one outcome per distributed transaction,
//	                             never a commit at an unprepared shard
//
// Overload runs additionally enable (SetFlow, flowcheck.go):
//
//	flow/terminal-outcome        every submitted request ends in a result,
//	                             an explicit rejection, or a deadline
//	flow/queue-bound             no admission queue reports occupancy over
//	                             its configured bound
//	flow/goodput-floor           completed work under overload stays above
//	                             a floor fraction of the baseline rate
//
// In sharded deployments several independent broadcast/consensus groups
// run side by side, each with its own slot numbering and instance space.
// SetGroupOf partitions the per-slot and per-instance state by group so
// shard 1's slot 7 is never compared against shard 0's slot 7; the
// per-shard properties then hold within each group exactly as they do
// for a single group. The cross-shard property spans groups: every
// participant that delivers a Decision for a transaction must deliver
// the same verdict, and a commit verdict may only arrive at a location
// that previously delivered the transaction's Prepare (prepared state
// itself is never revealed: replicas vote from their reservation ledger
// and only mutate the database at decision delivery, so a read served
// between the two can never observe a half-done transaction).
//
// Checker is safe for concurrent Feed from many nodes' sinks. The
// interleaving of concurrent feeds is one of the linear extensions of
// the per-node orders, which is exactly the adversary the properties
// quantify over, so concurrency cannot produce false alarms for
// total-order, single-value, or in-order (each keyed by per-node or
// per-slot state). Durability alone is order-sensitive across nodes only
// in the benign direction: a reply observed before its (earlier, other
// sink) delivery cannot happen because both events come from the same
// node's sink in recording order.
type Checker struct {
	mu sync.Mutex
	// groupOf assigns each location to an invariant group (sharded
	// deployments: one group per shard). Nil means one global group.
	groupOf func(msg.Loc) string
	// high is each location's highest contiguously delivered slot.
	high map[msg.Loc]int64
	// batch fingerprints the first batch seen for each broadcast slot,
	// keyed group\x00slot so independent shard orders never collide.
	batch map[string]string
	// batchLoc remembers who established the fingerprint (for messages).
	batchLoc map[string]msg.Loc
	// chosen maps group\x00proto\x00inst to the decided value.
	chosen map[string]string
	// delivered is per-location the set of transaction keys delivered in
	// ordered batches; a nil inner map means the location is not an SMR
	// executor and its replies are out of scope (mirrors bridge).
	delivered map[msg.Loc]map[string]bool
	// xprep records, per location, the cross-shard transactions whose
	// Prepare was delivered there; xdec the ones whose Decision was.
	xprep map[msg.Loc]map[string]bool
	xdec  map[msg.Loc]map[string]bool
	// xoutcome fixes the first delivered verdict per transaction; any
	// later conflicting verdict is the atomicity violation.
	xoutcome map[string]bool
	// restarted marks locations whose next delivery may legitimately
	// jump the per-node gap-free order: a crash-restarted node re-enters
	// the slot stream at wherever the broadcast is now, recovering the
	// missed range from its journal and quiet catch-up rather than
	// through redelivery. Cleared by the re-entry delivery (one
	// re-baseline per announced restart); duplicates of already-seen
	// slots leave it pending.
	restarted map[msg.Loc]bool

	// Dynamic membership (enabled by SetMembership; zero mAlpha = off).
	// mviews is the canonical shadow view per group, derived from the
	// member commands in the delivered order; locViews re-derives per
	// location for locations with full delivery history, so a node that
	// folds the same command stream into a different configuration is
	// caught even though the batches matched.
	mInitial member.Config
	mAlpha   int
	mviews   map[string]*member.View
	locViews map[msg.Loc]*member.View
	// baselined marks locations whose delivery stream has a hole the
	// checker excused (restart or join): their per-location epoch
	// derivation would start from a partial command history, so it is
	// skipped and only the canonical view covers them.
	baselined map[msg.Loc]bool
	// epochFP fixes the first configuration fingerprint derived for each
	// group\x00epoch; epochLoc remembers who established it.
	epochFP  map[string]string
	epochLoc map[string]msg.Loc
	// p2b records, per deciding location and instance, the phase-2
	// acknowledgements it received, by ballot — the certificate behind an
	// outgoing Decide. Deleted once the decision is checked.
	p2b map[string]map[string]map[msg.Loc]bool

	// Lease-based local reads (enabled by SetLease; zero lDur = off).
	// lDur and lMaxStale are the configured lease window and follower
	// staleness bound, in the trace's nanoseconds.
	lDur      int64
	lMaxStale int64
	// lIssue is, per location, the highest issue timestamp among lease
	// renewals delivered there — the node's provable clock frontier,
	// derived from ordered data rather than from anything the node
	// claims about itself.
	lIssue map[msg.Loc]int64
	// txSlot records the slot each transaction was delivered in (keyed
	// group\x00txkey): the frontier a read serve must cover to include
	// that write.
	txSlot map[string]int64
	// ackedHist is, per group, the monotone history of acknowledged
	// writes: (ack time, running max delivered slot of any acked tx).
	// Appended per TxResult, binary-searched by the read-serve checks.
	ackedHist map[string][]ackPoint
	// End-to-end flow accounting (enabled by SetFlow; see flowcheck.go).
	// flows maps an open request key (client/seq) to its deadline and
	// submission phase; phases is the load-phase timeline the overload
	// bench marks out, in declaration order.
	flowOn   bool
	flowMax  int
	flows    map[string]flowEntry
	phases   []*FlowPhase
	phaseIdx map[string]*FlowPhase

	// events counts fed events; violations collects flagged failures.
	events     int64
	violations []Violation

	// metrics, when the checker is watching an Obs.
	cEvents     *obs.Counter
	cViolations *obs.Counter

	// onViolation holds the violation hooks (flight-recorder dumps).
	// Guarded by its own lock so hooks can be fired after mu is released:
	// a hook typically calls back into Status(), which takes mu.
	hookMu      sync.RWMutex
	onViolation []func(Violation)
}

// Violation is one flagged property failure.
type Violation struct {
	// Property names the violated property (bridge registry name).
	Property string `json:"property"`
	// Detail is the human-readable failure description.
	Detail string `json:"detail"`
	// Loc is the node whose event exposed the violation.
	Loc msg.Loc `json:"loc"`
	// At is the event's timestamp, LC its Lamport clock, Trace its
	// per-request trace ID — enough to find the event in the merged trace.
	At    int64  `json:"at"`
	LC    int64  `json:"lc,omitempty"`
	Trace string `json:"trace,omitempty"`
}

// Error formats the violation as one line; Violation satisfies error
// so a failed certification can flow through error-returning paths.
func (v Violation) Error() string {
	return fmt.Sprintf("%s at %s (t=%d): %s", v.Property, v.Loc, v.At, v.Detail)
}

// NewChecker creates an empty online checker.
func NewChecker() *Checker {
	return &Checker{
		high:      make(map[msg.Loc]int64),
		batch:     make(map[string]string),
		batchLoc:  make(map[string]msg.Loc),
		chosen:    make(map[string]string),
		delivered: make(map[msg.Loc]map[string]bool),
		xprep:     make(map[msg.Loc]map[string]bool),
		xdec:      make(map[msg.Loc]map[string]bool),
		xoutcome:  make(map[string]bool),
		restarted: make(map[msg.Loc]bool),
		mviews:    make(map[string]*member.View),
		locViews:  make(map[msg.Loc]*member.View),
		baselined: make(map[msg.Loc]bool),
		epochFP:   make(map[string]string),
		epochLoc:  make(map[string]msg.Loc),
		p2b:       make(map[string]map[string]map[msg.Loc]bool),
		lIssue:    make(map[msg.Loc]int64),
		txSlot:    make(map[string]int64),
		ackedHist: make(map[string][]ackPoint),
	}
}

// ackPoint is one entry of a group's acknowledged-write history.
type ackPoint struct {
	at      int64
	maxSlot int64
}

// SetLease enables the lease-read properties with the cluster's lease
// duration and follower staleness bound. Call before feeding events.
// Three properties are then checked on every served local read:
//
//	read/lease-linearizability  a lease-mode serve's slot frontier covers
//	                            every write acknowledged strictly before
//	                            the serve (local reads at the holder miss
//	                            no acknowledged write)
//	read/lease-expiry           a lease-mode serve happens within Dur of
//	                            the last renewal DELIVERED to the serving
//	                            node — a partitioned deposed holder, cut
//	                            off from new renewals, must stop serving
//	                            when its window runs out
//	read/follower-staleness     a follower-mode serve's slot frontier
//	                            covers every write acknowledged more than
//	                            MaxStale before the serve
func (c *Checker) SetLease(dur, maxStale time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lDur = int64(dur)
	if maxStale <= 0 {
		maxStale = dur
	}
	c.lMaxStale = int64(maxStale)
}

// SetMembership enables the dynamic-membership properties: member
// commands folded out of delivered batches derive numbered configuration
// epochs from initial (member/epoch-config: one configuration per
// epoch), and every observed Decide certificate is checked against the
// acceptor set of the epoch governing its instance (member/stale-quorum:
// no decision certified by a quorum of a superseded configuration).
// alpha is the activation lag the cluster runs with. Call before feeding
// events; in sharded deployments every group shares initial, which fits
// the current single-group membership experiments.
func (c *Checker) SetMembership(initial member.Config, alpha int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mInitial = initial
	if alpha < 1 {
		alpha = 1
	}
	c.mAlpha = alpha
}

// NoteJoin tells the checker that loc is a joiner bootstrapping into the
// group mid-stream: exactly like a restart, its first delivery
// re-baselines the in-order frontier (the slots before its activation
// arrive by state transfer, not as Deliver events), and its per-location
// epoch derivation is skipped — it never saw the early member commands.
func (c *Checker) NoteJoin(loc msg.Loc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restarted[loc] = true
	c.baselined[loc] = true
	delete(c.locViews, loc)
}

// SetGroupOf partitions the per-slot and per-instance invariant state by
// the given location→group function (shard.GroupOf for the standard
// sharded naming). Call before feeding events. Locations mapped to ""
// share the global group, so the unsharded behaviour is the special case
// of every location mapping to "".
func (c *Checker) SetGroupOf(fn func(msg.Loc) string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groupOf = fn
}

// group resolves e's invariant group (callers hold mu).
func (c *Checker) group(loc msg.Loc) string {
	if c.groupOf == nil {
		return ""
	}
	return c.groupOf(loc)
}

// NoteRestart tells the checker that loc crashed and was restarted. Its
// next observed delivery re-baselines the in-order-delivery frontier
// instead of being flagged as a gap: the slots missed while down are
// recovered from the node's own journal plus catch-up, which never
// produce Deliver events. All other properties keep their state — a
// restart excuses a gap, never a reordering, a mismatched batch, or an
// unjustified reply.
func (c *Checker) NoteRestart(loc msg.Loc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restarted[loc] = true
}

// Watch subscribes the checker to o's live event stream: every Record
// with a step payload is fed as it happens. Call once per observed Obs
// (one checker can watch a whole cluster's nodes). Tracing must be
// enabled on o for step events to exist.
func (c *Checker) Watch(o *obs.Obs) {
	c.mu.Lock()
	if c.cEvents == nil {
		c.cEvents = o.Counter("dist.checker.events")
		c.cViolations = o.Counter("dist.checker.violations")
	}
	c.mu.Unlock()
	o.AddSink(c.Feed)
}

// OnViolation registers fn to run for every violation the checker flags,
// after the flagging event finishes — the flight recorder's dump trigger.
// Hooks run on the feeding goroutine with the checker unlocked, so a
// hook may call Status or Violations; it must return promptly (Feed sits
// on the event fan-out path) and must not Feed the same checker.
func (c *Checker) OnViolation(fn func(Violation)) {
	if fn == nil {
		return
	}
	c.hookMu.Lock()
	c.onViolation = append(c.onViolation, fn)
	c.hookMu.Unlock()
}

// Feed advances the checker by one event. Events without a step payload
// (metrics-adjacent records) are counted but otherwise ignored.
func (c *Checker) Feed(e obs.Event) {
	c.mu.Lock()
	c.events++
	if c.cEvents != nil {
		c.cEvents.Inc()
	}
	before := len(c.violations)
	if e.M != nil {
		// Incoming message first, then outputs: replies emitted in the same
		// step as a delivery must see the just-delivered transactions (the
		// usual SMR shape), matching the bridge's replay order.
		c.checkIncoming(e)
		for _, o := range e.Outs {
			c.checkOutgoing(e, o)
		}
	}
	var fresh []Violation
	if len(c.violations) > before {
		fresh = append(fresh, c.violations[before:]...)
	}
	c.mu.Unlock()
	if len(fresh) == 0 {
		return
	}
	c.hookMu.RLock()
	hooks := c.onViolation
	c.hookMu.RUnlock()
	for _, v := range fresh {
		for _, fn := range hooks {
			fn(v)
		}
	}
}

// FeedAll replays a recorded trace through the incremental checker —
// offline use of the online logic (collector results, saved traces).
func (c *Checker) FeedAll(events []obs.Event) {
	for _, e := range events {
		c.Feed(e)
	}
}

// Violations returns the flagged failures so far.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.violations...)
}

// Err returns the first violation as an error, nil when clean.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) == 0 {
		return nil
	}
	v := c.violations[0]
	return &v
}

// Status summarizes the checker for the admin endpoint.
type Status struct {
	// Events is the number of events fed.
	Events int64 `json:"events"`
	// Slots is the number of broadcast slots fingerprinted.
	Slots int `json:"slots"`
	// Decided is the number of consensus instances with a chosen value.
	Decided int `json:"decided"`
	// CrossShard is the number of distributed transactions with a
	// delivered 2PC verdict; CrossOpen counts transactions some location
	// prepared for but has not yet seen decided (nonzero after a drain
	// means a 2PC is stuck mid-protocol somewhere).
	CrossShard int `json:"cross_shard"`
	CrossOpen  int `json:"cross_open"`
	// Violations are the flagged failures (empty means clean so far).
	Violations []Violation `json:"violations"`
}

// Status snapshots the checker.
func (c *Checker) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Events:     c.events,
		Slots:      len(c.batch),
		Decided:    len(c.chosen),
		CrossShard: len(c.xoutcome),
		CrossOpen:  len(c.openCross()),
		Violations: append([]Violation(nil), c.violations...),
	}
}

// OpenCrossShard lists distributed transactions that some location
// delivered a prepare for without (yet) delivering the decision. After a
// drain the list must be empty: every prepared participant has learned
// the outcome, so no reservation is held forever.
func (c *Checker) OpenCrossShard() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.openCross()
}

func (c *Checker) openCross() []string {
	open := make(map[string]bool)
	for loc, preps := range c.xprep {
		for id := range preps {
			if !c.xdec[loc][id] {
				open[id] = true
			}
		}
	}
	out := make([]string, 0, len(open))
	for id := range open {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (c *Checker) flag(e obs.Event, property, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		Property: property, Detail: fmt.Sprintf(format, args...),
		Loc: e.Loc, At: e.At, LC: e.LC, Trace: e.Trace,
	})
	if c.cViolations != nil {
		c.cViolations.Inc()
	}
}

// batchFingerprint is the order-insensitive identity of a delivered
// batch (same normalization as broadcast.sameBatch: sorted message keys).
func batchFingerprint(msgs []broadcast.Bcast) string {
	keys := make([]string, len(msgs))
	for i, b := range msgs {
		keys[i] = string(b.From) + "/" + itoa(b.Seq)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

func (c *Checker) checkIncoming(e obs.Event) {
	m := *e.M
	switch b := m.Body.(type) {
	case broadcast.Deliver:
		if m.Hdr != broadcast.HdrDeliver {
			return
		}
		slot := int64(b.Slot)
		slotKey := c.group(e.Loc) + "\x00" + itoa(slot)

		// broadcast/total-order: every node of the group must see the
		// same batch in the same slot. The first receipt fingerprints the
		// slot; any later receipt (same node or another) must match.
		fp := batchFingerprint(b.Msgs)
		if prev, ok := c.batch[slotKey]; !ok {
			c.batch[slotKey] = fp
			c.batchLoc[slotKey] = e.Loc
		} else if prev != fp {
			c.flag(e, "broadcast/total-order",
				"%s received a batch for slot %d that differs from the one %s received",
				e.Loc, slot, c.batchLoc[slotKey])
		}

		// broadcast/in-order-delivery: per node, slots arrive gap-free
		// ascending (repeats of seen slots are fine — several service
		// nodes notify the same subscriber).
		h, seen := c.high[e.Loc]
		if !seen {
			h = -1
		}
		if slot > h+1 {
			if c.restarted[e.Loc] {
				// Announced restart or join: the node re-enters the stream
				// here. Its delivery history now has a hole, so per-location
				// epoch derivation is off for it from here on.
				h = slot - 1
				c.high[e.Loc] = h
				c.baselined[e.Loc] = true
				delete(c.locViews, e.Loc)
			} else {
				c.flag(e, "broadcast/in-order-delivery",
					"%s received slot %d before slot %d", e.Loc, slot, h+1)
			}
		}
		if slot == h+1 {
			c.high[e.Loc] = slot
		}
		if slot >= h+1 {
			// The excuse is consumed by the re-entry delivery itself (the
			// re-baseline above, or a contiguous resume when nothing was
			// missed) — not by a duplicate of an already-seen slot, which a
			// healing partition can flush out just before the node actually
			// re-enters the stream.
			delete(c.restarted, e.Loc)
		}

		// Record the delivered transactions for durability, and the 2PC
		// records for cross-shard atomicity.
		for _, bc := range b.Msgs {
			if cmd, ok := member.DecodeCommand(bc.Payload); ok {
				c.noteMemberCmd(e, cmd, slot)
				continue
			}
			if ren, ok := core.DecodeLease(bc.Payload); ok {
				// Renewals are the ordered clock beacons: the highest
				// issue delivered here bounds how far behind real time
				// this node's applied state can be. >= so an issue of 0
				// (a renewal proposed at the simulation epoch) still
				// creates the map entry checkReadServe keys on.
				if iss := int64(ren.Issue); iss >= c.lIssue[e.Loc] {
					c.lIssue[e.Loc] = iss
				}
				continue
			}
			if p, ok := shard.DecodePrepare(bc.Payload); ok {
				if c.xprep[e.Loc] == nil {
					c.xprep[e.Loc] = make(map[string]bool)
				}
				c.xprep[e.Loc][p.TxID] = true
				continue
			}
			if d, ok := shard.DecodeDecision(bc.Payload); ok {
				c.noteCrossDecision(e, d)
				continue
			}
			req, err := core.DecodeTx(bc.Payload)
			if err != nil {
				continue
			}
			c.noteDeliveredTx(e.Loc, req.Key())
			if c.lDur != 0 {
				c.txSlot[c.group(e.Loc)+"\x00"+req.Key()] = slot
			}
		}

	case core.SMRCatchup:
		// Catch-up deliveries are ordered slots served from a peer's
		// journal: transactions applied through them are as delivered as
		// the live ones, and a restarted lease holder may later
		// acknowledge them (re-acks). Credit durability only — the
		// ordering properties are checked against the live stream.
		if m.Hdr == core.HdrSMRCatchup {
			for _, d := range b.Delivers {
				for _, bc := range d.Msgs {
					if req, err := core.DecodeTx(bc.Payload); err == nil {
						c.noteDeliveredTx(e.Loc, req.Key())
						continue
					}
					if ren, ok := core.DecodeLease(bc.Payload); ok {
						// A renewal applied through catch-up is the same
						// ordered slot as a live one: it advances this
						// node's clock beacon exactly like a Deliver.
						if iss := int64(ren.Issue); iss >= c.lIssue[e.Loc] {
							c.lIssue[e.Loc] = iss
						}
					}
				}
			}
		}

	case core.SnapEnd:
		// A state transfer carries the sender's newest cached result per
		// client; the receiver may re-acknowledge exactly those after
		// becoming the lease holder.
		if m.Hdr == core.HdrSnapEnd {
			for _, res := range b.Recent {
				c.noteDeliveredTx(e.Loc, core.TxRequest{Client: res.Client, Seq: res.Seq}.Key())
			}
		}

	case synod.P2b:
		// The certificate material for member/stale-quorum: remember which
		// acceptors acknowledged phase 2 to this location, per instance and
		// ballot, until the decision is announced and checked.
		if m.Hdr == synod.HdrP2b && c.mAlpha != 0 {
			k := string(e.Loc) + "\x00" + itoa(int64(b.Inst))
			if c.p2b[k] == nil {
				c.p2b[k] = make(map[string]map[msg.Loc]bool)
			}
			bal := b.B.String()
			if c.p2b[k][bal] == nil {
				c.p2b[k][bal] = make(map[msg.Loc]bool)
			}
			c.p2b[k][bal][b.From] = true
		}

	case synod.Decide:
		if m.Hdr == synod.HdrDecide {
			c.noteDecide(e, "synod", int64(b.Inst), b.Val)
		}
	case twothird.Decide:
		if m.Hdr == twothird.HdrDecide {
			c.noteDecide(e, "twothird", int64(b.Inst), b.Val)
		}
	}
}

// noteDeliveredTx records that loc received req (by key) in an ordered
// delivery, a catch-up batch, or a state transfer — the justification
// set for shadowdb/durability.
func (c *Checker) noteDeliveredTx(loc msg.Loc, key string) {
	if c.delivered[loc] == nil {
		c.delivered[loc] = make(map[string]bool)
	}
	c.delivered[loc][key] = true
}

// noteMemberCmd folds one delivered membership command into the shadow
// views and checks member/epoch-config: every derivation of an epoch —
// canonical or by any full-history location — must produce the same
// configuration fingerprint.
func (c *Checker) noteMemberCmd(e obs.Event, cmd member.Command, slot int64) {
	if c.mAlpha == 0 {
		return
	}
	g := c.group(e.Loc)
	gv := c.mviews[g]
	if gv == nil {
		gv = member.NewView(c.mInitial, c.mAlpha)
		c.mviews[g] = gv
	}
	if cfg, ok := gv.Apply(cmd, int(slot)); ok {
		c.noteEpoch(e, g, cfg)
	}
	// Per-location derivation only makes sense over a complete command
	// history; joiners and restarted nodes are covered by the canonical
	// view alone.
	if c.baselined[e.Loc] {
		return
	}
	lv := c.locViews[e.Loc]
	if lv == nil {
		lv = member.NewView(c.mInitial, c.mAlpha)
		c.locViews[e.Loc] = lv
	}
	if cfg, ok := lv.Apply(cmd, int(slot)); ok {
		c.noteEpoch(e, g, cfg)
	}
}

// noteEpoch enforces one configuration per epoch: the first derivation
// fingerprints the epoch, any later conflicting derivation is flagged.
func (c *Checker) noteEpoch(e obs.Event, g string, cfg member.Config) {
	k := g + "\x00" + itoa(int64(cfg.Epoch))
	fp := cfg.Fingerprint()
	if prev, ok := c.epochFP[k]; !ok {
		c.epochFP[k] = fp
		c.epochLoc[k] = e.Loc
	} else if prev != fp {
		c.flag(e, "member/epoch-config",
			"%s derived config %q for epoch %d, conflicting with %q first derived at %s",
			e.Loc, fp, cfg.Epoch, prev, c.epochLoc[k])
	}
}

func (c *Checker) checkOutgoing(e obs.Event, o msg.Directive) {
	if c.flowOn {
		c.flowOutgoing(e, o)
	}
	switch b := o.M.Body.(type) {
	case synod.Decide:
		if o.M.Hdr == synod.HdrDecide {
			c.noteDecide(e, "synod", int64(b.Inst), b.Val)
			c.checkDecideQuorum(e, b.Inst)
		}
	case twothird.Decide:
		if o.M.Hdr == twothird.HdrDecide {
			c.noteDecide(e, "twothird", int64(b.Inst), b.Val)
		}
	case core.TxResult:
		// shadowdb/durability: a successful reply must name a
		// transaction previously delivered to the replier in an ordered
		// batch. Locations that never received a transaction-bearing
		// Deliver (PBR replicas) are out of scope, as in the bridge.
		if o.M.Hdr != core.HdrTxResult || b.Err != "" {
			return
		}
		set := c.delivered[e.Loc]
		if set == nil {
			return
		}
		key := core.TxRequest{Client: b.Client, Seq: b.Seq}.Key()
		if !set[key] {
			c.flag(e, "shadowdb/durability",
				"%s acknowledged %s without an ordered delivery", e.Loc, key)
		}
		if c.lDur != 0 {
			c.noteAck(e, key)
		}

	case *core.ReadResult:
		if o.M.Hdr == core.HdrReadResult {
			c.checkReadServe(e, b)
		}
	}
}

// noteAck appends one acknowledged write to the group's ack history:
// the running max of delivered slots among acked transactions, at the
// acknowledgement's time. Entry times are kept monotone so the serve
// checks can binary-search the history.
func (c *Checker) noteAck(e obs.Event, key string) {
	g := c.group(e.Loc)
	slot, ok := c.txSlot[g+"\x00"+key]
	if !ok {
		return
	}
	hist := c.ackedHist[g]
	at, mx := e.At, slot
	if n := len(hist); n > 0 {
		if hist[n-1].maxSlot > mx {
			mx = hist[n-1].maxSlot
		}
		if hist[n-1].at > at {
			at = hist[n-1].at
		}
	}
	c.ackedHist[g] = append(hist, ackPoint{at: at, maxSlot: mx})
}

// maxAckedBefore returns the highest delivered slot among writes of
// group g acknowledged strictly before time t (-1 when none).
func (c *Checker) maxAckedBefore(g string, t int64) int64 {
	hist := c.ackedHist[g]
	// First entry with at >= t; the one before it is the latest ack
	// strictly before t, and its maxSlot is the running maximum.
	i := sort.Search(len(hist), func(i int) bool { return hist[i].at >= t })
	if i == 0 {
		return -1
	}
	return hist[i-1].maxSlot
}

// checkReadServe audits one served local read against the lease
// properties (see SetLease). Rejections and errors are not serves and
// are out of scope — rejecting is always safe.
func (c *Checker) checkReadServe(e obs.Event, b *core.ReadResult) {
	if c.lDur == 0 || b.Rejected || b.Err != "" {
		return
	}
	g := c.group(e.Loc)
	switch b.Mode {
	case core.ReadLease:
		// read/lease-expiry: the serve must fall inside the window of a
		// renewal this node demonstrably applied. A node partitioned
		// away from the total order stops receiving renewals, so its
		// delivered issue frontier freezes and this catches it the
		// moment it overstays.
		if iss, ok := c.lIssue[e.Loc]; !ok || e.At > iss+c.lDur {
			c.flag(e, "read/lease-expiry",
				"%s served a lease read at t=%d past its lease window (last delivered renewal issued %d, dur %d)",
				e.Loc, e.At, iss, c.lDur)
		}
		// read/lease-linearizability: the serving state must include
		// every write acknowledged before the serve.
		if want := c.maxAckedBefore(g, e.At); int64(b.Slot) < want {
			c.flag(e, "read/lease-linearizability",
				"%s served a lease read at slot frontier %d, behind acknowledged write slot %d",
				e.Loc, b.Slot, want)
		}
	case core.ReadFollower:
		// read/follower-staleness: the serving state must include every
		// write acknowledged more than MaxStale before the serve.
		if want := c.maxAckedBefore(g, e.At-c.lMaxStale); int64(b.Slot) < want {
			c.flag(e, "read/follower-staleness",
				"%s served a follower read at slot frontier %d, missing write slot %d acknowledged more than %dns earlier",
				e.Loc, b.Slot, want, c.lMaxStale)
		}
	}
}

// checkDecideQuorum enforces member/stale-quorum: the first Decide a
// location announces for an instance must be backed by phase-2
// acknowledgements from a majority of the acceptor set of the epoch
// governing that instance, within a single ballot. A certificate drawn
// from a superseded configuration — a commander that kept counting a
// quorum of the old acceptors after the epoch switched — is exactly the
// split-brain hazard dynamic membership introduces. Locations that
// re-announce a decision they learned (no recorded P2bs) are skipped;
// the entry is deleted after the one check.
func (c *Checker) checkDecideQuorum(e obs.Event, inst int) {
	if c.mAlpha == 0 {
		return
	}
	k := string(e.Loc) + "\x00" + itoa(int64(inst))
	ballots, ok := c.p2b[k]
	if !ok {
		return
	}
	delete(c.p2b, k)
	gv := c.mviews[c.group(e.Loc)]
	if gv == nil {
		// No member command delivered yet: the initial epoch governs.
		gv = member.NewView(c.mInitial, c.mAlpha)
	}
	accs := gv.AcceptorsFor(inst)
	maj := len(accs)/2 + 1
	for _, senders := range ballots {
		n := 0
		for _, a := range accs {
			if senders[a] {
				n++
			}
		}
		if n >= maj {
			return
		}
	}
	c.flag(e, "member/stale-quorum",
		"%s decided instance %d without a single-ballot majority of epoch %d's acceptors %v",
		e.Loc, inst, gv.EpochOf(inst).Epoch, accs)
}

// noteDecide enforces consensus/single-value-per-slot across sent and
// received Decide announcements of both protocols, within the deciding
// location's group.
func (c *Checker) noteDecide(e obs.Event, proto string, inst int64, val string) {
	k := c.group(e.Loc) + "\x00" + proto + "\x00" + itoa(inst)
	if prev, ok := c.chosen[k]; ok {
		if prev != val {
			c.flag(e, "consensus/single-value-per-slot",
				"%s instance %d decided twice: %q and %q", proto, inst, prev, val)
		}
		return
	}
	c.chosen[k] = val
}

// noteCrossDecision enforces shard/cross-atomicity on one delivered 2PC
// decision: every participant must deliver the same verdict, and a
// commit verdict must land on a location that previously delivered the
// transaction's prepare (an abort without a prepare is legitimate — the
// coordinator aborts when a partitioned shard never saw the prepare —
// but a commit without one would apply effects the shard never voted
// for).
func (c *Checker) noteCrossDecision(e obs.Event, d shard.Decision) {
	if prev, ok := c.xoutcome[d.TxID]; ok {
		if prev != d.Commit {
			c.flag(e, "shard/cross-atomicity",
				"transaction %s decided both commit and abort across shards", d.TxID)
		}
	} else {
		c.xoutcome[d.TxID] = d.Commit
	}
	if d.Commit && !c.xprep[e.Loc][d.TxID] {
		c.flag(e, "shard/cross-atomicity",
			"%s delivered a commit for %s without delivering its prepare", e.Loc, d.TxID)
	}
	if c.xdec[e.Loc] == nil {
		c.xdec[e.Loc] = make(map[string]bool)
	}
	c.xdec[e.Loc][d.TxID] = true
}
