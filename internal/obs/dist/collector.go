package dist

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"shadowdb/internal/obs"
)

// Collector pulls per-node trace rings and merges them into one global
// causal trace. Sources can be live admin endpoints (Pull), in-process
// or simulated nodes' Obs instances (Gather), or pre-downloaded event
// slices (Add) — mixing is fine, e.g. three TCP nodes plus a DES
// cluster's virtual nodes in one collection.
type Collector struct {
	// Client performs the HTTP pulls; nil means a 10-second-timeout
	// default client.
	Client *http.Client

	nodes map[string][]obs.Event
	order []string
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{nodes: make(map[string][]obs.Event)}
}

// Add records one node's downloaded trace under a name. Re-adding a name
// replaces its trace (a later, longer download supersedes).
func (c *Collector) Add(name string, events []obs.Event) {
	if c.nodes == nil {
		c.nodes = make(map[string][]obs.Event)
	}
	if _, ok := c.nodes[name]; !ok {
		c.order = append(c.order, name)
	}
	c.nodes[name] = events
}

// Gather adds every node of an in-memory deployment: name -> its Obs.
// Virtual (DES) nodes share one cluster Obs — pass it once under the
// cluster's name.
func (c *Collector) Gather(nodes map[string]*obs.Obs) {
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c.Add(n, nodes[n].Events())
	}
}

// Pull downloads one node's trace ring from its admin endpoint
// (GET addr/trace, gob-encoded) and adds it under the address.
func (c *Collector) Pull(addr string) error {
	cl := c.Client
	if cl == nil {
		cl = &http.Client{Timeout: 10 * time.Second}
	}
	url := addr
	if len(url) < 7 || url[:7] != "http://" && (len(url) < 8 || url[:8] != "https://") {
		url = "http://" + url
	}
	resp, err := cl.Get(url + "/trace")
	if err != nil {
		return fmt.Errorf("dist: pull %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: pull %s: status %s", addr, resp.Status)
	}
	events, err := obs.DecodeTrace(resp.Body)
	if err != nil {
		return fmt.Errorf("dist: pull %s: %w", addr, err)
	}
	c.Add(addr, events)
	return nil
}

// PullAll pulls every address, returning the first error after trying
// all (partial collections still merge what arrived).
func (c *Collector) PullAll(addrs ...string) error {
	var first error
	for _, a := range addrs {
		if err := c.Pull(a); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Result is one collection: the per-node traces, their causal merge, the
// reconstructed request spans, and per-node ring-overflow gaps.
type Result struct {
	// Nodes holds each source's raw trace.
	Nodes map[string][]obs.Event `json:"-"`
	// Merged is the global causally ordered trace (obs.MergeCausal).
	Merged []obs.Event `json:"-"`
	// Spans are the per-request path reconstructions over Merged.
	Spans []Span `json:"spans"`
	// Segments summarizes the complete spans' latency segments.
	Segments map[string]SegmentStats `json:"segments"`
	// Gaps maps each source whose ring overflowed to its count of evicted
	// events. A non-empty map means Merged is INCOMPLETE: property
	// checking over it can miss violations (never fabricate them), and
	// span stages may be missing.
	Gaps map[string]int64 `json:"gaps,omitempty"`
}

// Collect merges everything added so far.
func (c *Collector) Collect() Result {
	r := Result{Nodes: make(map[string][]obs.Event, len(c.nodes))}
	traces := make([][]obs.Event, 0, len(c.order))
	for _, name := range c.order {
		t := c.nodes[name]
		r.Nodes[name] = t
		traces = append(traces, t)
		if gap := obs.RingGap(t); gap > 0 {
			if r.Gaps == nil {
				r.Gaps = make(map[string]int64)
			}
			r.Gaps[name] = gap
		}
	}
	r.Merged = obs.MergeCausal(traces...)
	r.Spans = Spans(r.Merged)
	r.Segments = SegmentSummary(r.Spans)
	return r
}

// Check replays the collection through the online checker's logic and
// returns its violations. Ring gaps are reported as an error first: an
// overflowed ring means the trace is incomplete and a clean check proves
// nothing about the evicted prefix.
func (r Result) Check() ([]Violation, error) {
	if len(r.Gaps) > 0 {
		names := make([]string, 0, len(r.Gaps))
		for n := range r.Gaps {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("dist: trace incomplete, ring overflowed on %v", names)
	}
	ck := NewChecker()
	ck.FeedAll(r.Merged)
	return ck.Violations(), nil
}
