package dist_test

import (
	"strings"
	"testing"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
	"shadowdb/internal/obs/dist"
	"shadowdb/internal/shard"
)

// deliverEvent synthesizes the checker's view of one ordered batch
// arriving at loc. The batch identity (what the total-order fingerprint
// hashes) is the (from, seq) pair of each message, so divergence tests
// vary `from` to make two slots' batches distinguishable.
func deliverEvent(loc msg.Loc, slot int, from msg.Loc, payloads ...[]byte) obs.Event {
	var msgs []broadcast.Bcast
	for i, p := range payloads {
		msgs = append(msgs, broadcast.Bcast{From: from, Seq: int64(slot*100 + i), Payload: p})
	}
	m := msg.M(broadcast.HdrDeliver, broadcast.Deliver{Slot: slot, Msgs: msgs})
	return obs.Event{Loc: loc, M: &m}
}

func txPayload(t *testing.T, client msg.Loc, seq int64) []byte {
	t.Helper()
	b, err := core.EncodeTx(core.TxRequest{Client: client, Seq: seq, Type: "deposit", Args: []any{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Two shards legitimately deliver different batches in the same slot
// number — their total orders are independent. Group keying must keep
// them apart; the ungrouped checker (the unsharded deployment's view)
// must keep flagging the same history as a total-order violation.
func TestCheckerGroupKeyingSeparatesShards(t *testing.T) {
	evA := deliverEvent("s0r1", 0, "c1", txPayload(t, "c1", 1))
	evB := deliverEvent("s1r1", 0, "c2", txPayload(t, "c2", 1))

	grouped := dist.NewChecker()
	grouped.SetGroupOf(shard.GroupOf)
	grouped.FeedAll([]obs.Event{evA, evB})
	if vs := grouped.Violations(); len(vs) != 0 {
		t.Fatalf("group-keyed checker flagged independent shard orders: %v", vs)
	}

	flat := dist.NewChecker()
	flat.FeedAll([]obs.Event{evA, evB})
	if vs := flat.Violations(); len(vs) != 1 || vs[0].Property != "broadcast/total-order" {
		t.Fatalf("ungrouped checker should flag the divergent slot: %v", vs)
	}
}

// Same shard, divergent batch in one slot: still a violation under
// group keying (the group shares one total order).
func TestCheckerFlagsDivergenceWithinShard(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetGroupOf(shard.GroupOf)
	ck.FeedAll([]obs.Event{
		deliverEvent("s0r1", 0, "c1", txPayload(t, "c1", 1)),
		deliverEvent("s0r2", 0, "c2", txPayload(t, "c2", 9)),
	})
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Property != "broadcast/total-order" {
		t.Fatalf("divergent batch within a shard not flagged: %v", vs)
	}
}

func prepPayload(txid string, shardIdx int) []byte {
	return shard.EncodePrepare(shard.Prepare{
		TxID: txid, Coord: "rt1", Shard: shardIdx, Participants: []int{0, 1},
		Sub: shard.SubTx{Apply: "deposit", ApplyArgs: []any{1, 1}},
	})
}

func decPayload(txid string, shardIdx int, commit bool) []byte {
	return shard.EncodeDecision(shard.Decision{TxID: txid, Shard: shardIdx, Coord: "rt1", Commit: commit})
}

func TestCheckerCrossShardAtomicityClean(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetGroupOf(shard.GroupOf)
	ck.FeedAll([]obs.Event{
		deliverEvent("s0r1", 0, "rt1", prepPayload("c9/1", 0)),
		deliverEvent("s1r1", 0, "rt1", prepPayload("c9/1", 1)),
	})
	if open := ck.OpenCrossShard(); len(open) != 1 || open[0] != "c9/1" {
		t.Fatalf("OpenCrossShard = %v, want [c9/1]", open)
	}
	ck.FeedAll([]obs.Event{
		deliverEvent("s0r1", 1, "rt1", decPayload("c9/1", 0, true)),
		deliverEvent("s1r1", 1, "rt1", decPayload("c9/1", 1, true)),
	})
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("clean 2PC flagged: %v", vs)
	}
	if open := ck.OpenCrossShard(); len(open) != 0 {
		t.Fatalf("decided transaction still open: %v", open)
	}
	if st := ck.Status(); st.CrossShard != 1 || st.CrossOpen != 0 {
		t.Fatalf("status cross-shard counts wrong: %+v", st)
	}
}

func TestCheckerFlagsCommitWithoutPrepare(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetGroupOf(shard.GroupOf)
	ck.FeedAll([]obs.Event{
		deliverEvent("s0r1", 0, "rt1", prepPayload("c9/2", 0)),
		deliverEvent("s0r1", 1, "rt1", decPayload("c9/2", 0, true)),
		// Shard 1 never delivered the prepare but delivers a commit:
		// effects it never voted for.
		deliverEvent("s1r1", 0, "rt1", decPayload("c9/2", 1, true)),
	})
	vs := ck.Violations()
	if len(vs) != 1 || vs[0].Property != "shard/cross-atomicity" {
		t.Fatalf("commit-without-prepare not flagged: %v", vs)
	}
	if !strings.Contains(vs[0].Detail, "without delivering its prepare") {
		t.Fatalf("unexpected detail: %s", vs[0].Detail)
	}
}

func TestCheckerAllowsAbortWithoutPrepare(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetGroupOf(shard.GroupOf)
	// The coordinator aborts a transaction whose prepare never reached
	// shard 1 (partition): the abort decision is the only record shard 1
	// ever sees. Legitimate.
	ck.FeedAll([]obs.Event{
		deliverEvent("s0r1", 0, "rt1", prepPayload("c9/3", 0)),
		deliverEvent("s0r1", 1, "rt1", decPayload("c9/3", 0, false)),
		deliverEvent("s1r1", 0, "rt1", decPayload("c9/3", 1, false)),
	})
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("abort-without-prepare wrongly flagged: %v", vs)
	}
}

func TestCheckerFlagsConflictingOutcomes(t *testing.T) {
	ck := dist.NewChecker()
	ck.SetGroupOf(shard.GroupOf)
	ck.FeedAll([]obs.Event{
		deliverEvent("s0r1", 0, "rt1", prepPayload("c9/4", 0)),
		deliverEvent("s1r1", 0, "rt1", prepPayload("c9/4", 1)),
		deliverEvent("s0r1", 1, "rt1", decPayload("c9/4", 0, true)),
		deliverEvent("s1r1", 1, "rt1", decPayload("c9/4", 1, false)),
	})
	found := false
	for _, v := range ck.Violations() {
		if v.Property == "shard/cross-atomicity" && strings.Contains(v.Detail, "commit and abort") {
			found = true
		}
	}
	if !found {
		t.Fatalf("conflicting outcomes not flagged: %v", ck.Violations())
	}
}
