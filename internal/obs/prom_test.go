package obs_test

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"shadowdb/internal/obs"
)

// parseProm is a strict parser for the subset of the Prometheus text
// exposition format WritePrometheus emits: "# TYPE name kind" comments
// followed by "name[{labels}] value" samples. It fails on any line that
// does not parse, so the test asserts the whole document is well-formed,
// not just that a few expected lines appear.
func parseProm(t *testing.T, r io.Reader) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string]float64)
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) != 4 || parts[1] != "TYPE" {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, parts[3])
			}
			if !validPromName(parts[2]) {
				t.Fatalf("line %d: invalid metric name %q", ln+1, parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d: no sample value in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, key)
			}
			name = key[:i]
		}
		if !validPromName(name) {
			t.Fatalf("line %d: invalid sample name %q", ln+1, name)
		}
		samples[key] = val
	}
	return types, samples
}

func validPromName(name string) bool {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return name != ""
}

func TestWritePrometheusParses(t *testing.T) {
	o := obs.New(16)
	o.Counter("runtime.steps").Add(7)
	o.Gauge("des.queue_depth").Set(3)
	h := o.Histogram("dist.span.total_ns")
	for i := 1; i <= 100; i++ {
		h.ObserveDuration(time.Duration(i) * time.Millisecond)
	}

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, o.Snapshot()); err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, bytes.NewReader(buf.Bytes()))

	if types["runtime_steps"] != "counter" {
		t.Errorf("runtime_steps type = %q, want counter", types["runtime_steps"])
	}
	if samples["runtime_steps"] != 7 {
		t.Errorf("runtime_steps = %v, want 7", samples["runtime_steps"])
	}
	if types["des_queue_depth"] != "gauge" || samples["des_queue_depth"] != 3 {
		t.Errorf("gauge wrong: type %q value %v", types["des_queue_depth"], samples["des_queue_depth"])
	}
	if types["dist_span_total_ns"] != "histogram" {
		t.Errorf("histogram type = %q, want histogram", types["dist_span_total_ns"])
	}
	if samples["dist_span_total_ns_count"] != 100 {
		t.Errorf("histogram count = %v, want 100", samples["dist_span_total_ns_count"])
	}
	wantSum := float64(100*101/2) * float64(time.Millisecond)
	if samples["dist_span_total_ns_sum"] != wantSum {
		t.Errorf("histogram sum = %v, want %v", samples["dist_span_total_ns_sum"], wantSum)
	}
	// Native bucket series: cumulative counts ascending with le, the +Inf
	// bucket equal to the total count.
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	for key, val := range samples {
		if !strings.HasPrefix(key, `dist_span_total_ns_bucket{le="`) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(key, `dist_span_total_ns_bucket{le="`), `"}`)
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			t.Fatalf("bad le label %q: %v", leStr, err)
		}
		buckets = append(buckets, bkt{le, val})
	}
	if len(buckets) < 3 {
		t.Fatalf("want several _bucket series for 100 spread samples, got %d", len(buckets))
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if buckets[i].cum < buckets[i-1].cum {
			t.Errorf("bucket counts not cumulative: le=%v cum=%v after le=%v cum=%v",
				buckets[i].le, buckets[i].cum, buckets[i-1].le, buckets[i-1].cum)
		}
	}
	inf := buckets[len(buckets)-1]
	if !math.IsInf(inf.le, 1) || inf.cum != 100 {
		t.Errorf("+Inf bucket = le=%v cum=%v, want +Inf/100", inf.le, inf.cum)
	}
	if samples["dist_span_total_ns_max"] != float64(100*time.Millisecond) {
		t.Errorf("max = %v", samples["dist_span_total_ns_max"])
	}
}

func TestMetricsEndpointContentNegotiation(t *testing.T) {
	o := obs.New(16)
	o.Counter("runtime.steps").Inc()
	srv, addr, err := obs.Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Default stays JSON (the existing dashboards and tests).
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metrics Content-Type = %q", ct)
	}
	if !bytes.Contains(body, []byte(`"counters"`)) {
		t.Fatalf("default /metrics is not the JSON snapshot: %s", body)
	}

	// A text/plain Accept (Prometheus scraper) switches to exposition.
	req, _ := http.NewRequest("GET", "http://"+addr+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	_, samples := parseProm(t, resp.Body)
	resp.Body.Close()
	if samples["runtime_steps"] != 1 {
		t.Fatalf("scrape missing runtime_steps: %v", samples)
	}

	// The explicit route needs no header.
	resp, err = http.Get("http://" + addr + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	_, samples = parseProm(t, resp.Body)
	resp.Body.Close()
	if samples["runtime_steps"] != 1 {
		t.Fatalf("/metrics.prom missing runtime_steps: %v", samples)
	}
}
