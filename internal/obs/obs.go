// Package obs is the observability subsystem for the replication stack:
// lock-free metrics (counters, gauges, latency histograms), a causal
// trace ring buffer with a fixed cross-layer event schema, and an admin
// HTTP endpoint. A recorded trace replays through the property registry
// via internal/obs/bridge, so the invariants the bounded verifier checks
// in simulation are also checked against live runs.
//
// obs sits at the bottom of the dependency graph (it imports only msg
// and gpm); every other layer imports obs and either takes an *Obs
// (runtime.Host, broadcast.Config, des.Cluster, shadowdb.Config) or uses
// the process-wide Default via the C/G/H helpers.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCap is the ring-buffer capacity used by New and Default:
// enough for several thousand transactions end to end while bounding
// memory at a few MB.
const DefaultTraceCap = 16384

// Obs bundles a metrics registry with a trace ring buffer. Metrics are
// always live (a disabled counter costs one atomic add); tracing is off
// until EnableTracing, and a disabled Record returns after one atomic
// load.
type Obs struct {
	metrics *Registry

	// logs is the structured log ring (log.go). Set once at construction
	// and immutable after, so the hot-path nil check needs no atomics;
	// nil on a Nop Obs (logging disabled entirely).
	logs *logState

	tracing atomic.Bool
	clock   atomic.Pointer[func() int64]

	// lc is the node's Lamport clock: Tick on send, Witness on receive.
	// It runs even with tracing off (one atomic op per message) so a
	// trace window enabled mid-run still carries causally ordered stamps.
	lc atomic.Int64

	sinkMu sync.RWMutex
	sinks  []func(Event)

	mu   sync.Mutex
	ring []Event
	cap  int
	seq  int64 // next Seq to assign; ring holds seq-len(ring)..seq-1
}

// New creates an Obs with the given trace capacity (DefaultTraceCap if
// n <= 0). Tracing starts disabled; the ring is allocated lazily on
// EnableTracing.
func New(n int) *Obs {
	if n <= 0 {
		n = DefaultTraceCap
	}
	return &Obs{metrics: NewRegistry(), logs: newLogState(), cap: n}
}

// Nop returns an Obs whose handles are all nil: every metric update and
// trace record is a no-op branch. Useful as an explicit "off" value and
// as the baseline in overhead benchmarks.
func Nop() *Obs { return &Obs{} }

// Default is the process-wide Obs. One OS process hosts one node in real
// deployments, so Default's registry is the node's registry; binaries
// serve it over the admin endpoint.
var Default = New(DefaultTraceCap)

// Counter returns the named counter handle (nil on a Nop Obs — all
// handle methods are nil-safe).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.metrics.Counter(name)
}

// Gauge returns the named gauge handle.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.metrics.Gauge(name)
}

// Histogram returns the named histogram handle.
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.metrics.Histogram(name)
}

// Snapshot dumps every registered metric.
func (o *Obs) Snapshot() Snapshot {
	if o == nil {
		return (*Registry)(nil).Snapshot()
	}
	return o.metrics.Snapshot()
}

// C, G and H are package-level helpers bound to Default, for layers
// (consensus, core) that instrument the process-wide node registry.
func C(name string) *Counter   { return Default.Counter(name) }
func G(name string) *Gauge     { return Default.Gauge(name) }
func H(name string) *Histogram { return Default.Histogram(name) }

// ---------------------------------------------------------------- clock --

// Now returns the current trace timestamp in nanoseconds: wall-clock
// UnixNano unless SetClock installed another source (the DES installs
// its virtual clock so simulated and real traces share a schema).
func (o *Obs) Now() int64 {
	if o == nil {
		return 0
	}
	if fn := o.clock.Load(); fn != nil {
		return (*fn)()
	}
	return time.Now().UnixNano()
}

// SetClock replaces the timestamp source; nil restores wall clock.
func (o *Obs) SetClock(fn func() int64) {
	if o == nil {
		return
	}
	if fn == nil {
		o.clock.Store(nil)
		return
	}
	o.clock.Store(&fn)
}

// -------------------------------------------------------- lamport clock --

// Tick advances the Lamport clock for a local or send event and returns
// the new value. Senders stamp outgoing envelopes with it.
func (o *Obs) Tick() int64 {
	if o == nil {
		return 0
	}
	return o.lc.Add(1)
}

// Witness merges a remote Lamport timestamp at a receive event: the clock
// jumps past both the remote stamp and its own previous value, and the
// resulting value is the receive event's clock.
func (o *Obs) Witness(remote int64) int64 {
	if o == nil {
		return 0
	}
	for {
		cur := o.lc.Load()
		next := cur + 1
		if remote >= cur {
			next = remote + 1
		}
		if o.lc.CompareAndSwap(cur, next) {
			return next
		}
	}
}

// LC returns the current Lamport clock value.
func (o *Obs) LC() int64 {
	if o == nil {
		return 0
	}
	return o.lc.Load()
}

// ---------------------------------------------------------------- trace --

// Tracing reports whether trace recording is on. Call sites that build
// an Event (allocations, field extraction) should guard on this.
func (o *Obs) Tracing() bool { return o != nil && o.tracing.Load() }

// EnableTracing switches trace recording on or off. The ring survives a
// disable so a captured window can still be downloaded.
func (o *Obs) EnableTracing(on bool) {
	if o == nil {
		return
	}
	if on {
		o.mu.Lock()
		if o.ring == nil {
			c := o.cap
			if c <= 0 {
				c = DefaultTraceCap
			}
			o.cap = c
			o.ring = make([]Event, 0, c)
		}
		o.mu.Unlock()
	}
	o.tracing.Store(on)
}

// AddSink registers fn to observe every event Record accepts, after Seq,
// At and LC are stamped. Sinks run synchronously on the recording
// goroutine (the online checker's Feed is O(1)); a sink must not call
// back into Record on the same Obs.
func (o *Obs) AddSink(fn func(Event)) {
	if o == nil || fn == nil {
		return
	}
	o.sinkMu.Lock()
	o.sinks = append(o.sinks, fn)
	o.sinkMu.Unlock()
}

// Record appends an event to the ring, assigning Seq and stamping At (and
// LC) if unset, then fans the event out to registered sinks. When tracing
// is off this is one atomic load.
func (o *Obs) Record(e Event) {
	if o == nil || !o.tracing.Load() {
		return
	}
	if e.At == 0 {
		e.At = o.Now()
	}
	if e.LC == 0 {
		e.LC = o.lc.Load()
	}
	o.mu.Lock()
	e.Seq = o.seq
	o.seq++
	if len(o.ring) < o.cap {
		o.ring = append(o.ring, e)
	} else {
		o.ring[int(e.Seq)%o.cap] = e
	}
	o.mu.Unlock()
	o.sinkMu.RLock()
	sinks := o.sinks
	o.sinkMu.RUnlock()
	for _, fn := range sinks {
		fn(e)
	}
}

// Events returns the recorded events oldest-first.
func (o *Obs) Events() []Event {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Event, 0, len(o.ring))
	if len(o.ring) < o.cap {
		out = append(out, o.ring...)
		return out
	}
	// Full ring: oldest entry sits at seq%cap.
	start := int(o.seq) % o.cap
	out = append(out, o.ring[start:]...)
	out = append(out, o.ring[:start]...)
	return out
}

// ResetTrace drops recorded events (capacity is kept).
func (o *Obs) ResetTrace() {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.ring = o.ring[:0]
	o.seq = 0
	o.mu.Unlock()
}
