package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"shadowdb/internal/msg"
)

// The postmortem dumper. A Recorder binds an Obs (trace ring + metrics)
// and a log source to a directory in the node's data-dir; Dump snapshots
// everything the flight recorder holds — log ring, trace ring, metrics
// snapshot + rate windows, checker status, goroutine and heap profiles,
// build/config metadata — into one atomically-renamed bundle directory.
// Triggers: checker violation (dist.Checker.OnViolation), panic
// (OnPanic), fault-injection kill windows (fault.ProcessHooks.Flight),
// SIGQUIT (NotifySignals), and POST /flight/dump on the admin endpoint.

// BundleVersion is the bundle format version written into meta.json.
const BundleVersion = 1

// DefaultMinDumpGap rate-limits TryDump: a checker finding the same
// violation on every event would otherwise grind the node dumping
// profiles in a loop.
const DefaultMinDumpGap = 5 * time.Second

// Bundle file names. A bundle is a directory; it is written under a
// ".tmp" suffix and renamed into place, so any directory without the
// suffix is complete.
const (
	bundleMetaFile    = "meta.json"
	bundleLogsFile    = "logs.json"
	bundleTraceFile   = "trace.gob"
	bundleMetricsFile = "metrics.json"
	bundleCheckerFile = "checker.json"
	bundleGorosFile   = "goroutines.txt"
	bundleHeapFile    = "heap.pprof"
	bundleTmpSuffix   = ".tmp"
	bundlePrefix      = "bundle-"
)

// Recorder is the flight-recorder dump side: immutable bindings set at
// construction, tunables behind a mutex, and a Dump that never blocks
// the hot path (loggers and tracers keep appending; Dump reads
// consistent copies through the rings' own locks).
type Recorder struct {
	o      *Obs
	logSrc *Obs
	dir    string
	node   msg.Loc

	// MinGap is the TryDump rate limit (DefaultMinDumpGap when zero).
	MinGap time.Duration

	mu            sync.Mutex
	config        map[string]string
	checkerStatus func() any
	rates         *Rates
	seq           int

	lastDump atomic.Int64 // wall ns of the last accepted TryDump
}

// NewRecorder creates a recorder dumping bundles for node into dir
// (created if missing). Leftover ".tmp" bundles from a previous crashed
// dump are swept away so the directory only ever lists complete bundles
// plus at most one in-flight temp.
func NewRecorder(o *Obs, dir string, node msg.Loc) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: create dir: %w", err)
	}
	r := &Recorder{o: o, logSrc: o, dir: dir, node: node}
	r.sweepTmp()
	return r, nil
}

// sweepTmp removes incomplete bundle temp directories — the other half
// of the atomic-rename contract.
func (r *Recorder) sweepTmp() {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), bundlePrefix) && strings.HasSuffix(e.Name(), bundleTmpSuffix) {
			os.RemoveAll(filepath.Join(r.dir, e.Name()))
		}
	}
}

// Dir returns the bundle directory.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Node returns the node the recorder dumps for.
func (r *Recorder) Node() msg.Loc {
	if r == nil {
		return ""
	}
	return r.node
}

// SetConfig attaches startup configuration (flag values, roles) recorded
// into every bundle's meta.
func (r *Recorder) SetConfig(cfg map[string]string) {
	if r == nil {
		return
	}
	cp := make(map[string]string, len(cfg))
	for k, v := range cfg {
		cp[k] = v
	}
	r.mu.Lock()
	r.config = cp
	r.mu.Unlock()
}

// SetCheckerStatus attaches a status callback (typically wrapping
// dist.Checker.Status) whose JSON-marshaled result lands in
// checker.json. It runs during Dump, so it must not require locks a
// violation hook already holds.
func (r *Recorder) SetCheckerStatus(fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.checkerStatus = fn
	r.mu.Unlock()
}

// SetRates attaches a windowed-delta tracker whose retained windows are
// dumped beside the cumulative snapshot.
func (r *Recorder) SetRates(rates *Rates) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rates = rates
	r.mu.Unlock()
}

// SetLogSource redirects the log-ring read to another Obs. DES runs
// attach a dedicated Obs for traces and metrics while package-level
// loggers still write through Default; pointing the recorder's log
// source at Default captures both sides in one bundle.
func (r *Recorder) SetLogSource(o *Obs) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.logSrc = o
	r.mu.Unlock()
}

// BundleMeta is a bundle's meta.json: what, who, when, and under which
// build and configuration.
type BundleMeta struct {
	Version int     `json:"version"`
	Node    msg.Loc `json:"node"`
	Reason  string  `json:"reason"`
	// WallAt is wall-clock UnixNano at the dump; At is the Obs clock
	// (virtual under the simulator) and LC the node's Lamport clock, the
	// coordinates used for cross-node merging.
	WallAt    int64             `json:"wall_at"`
	At        int64             `json:"at"`
	LC        int64             `json:"lc"`
	GitSHA    string            `json:"git_sha,omitempty"`
	GoVersion string            `json:"go_version"`
	PID       int               `json:"pid"`
	Config    map[string]string `json:"config,omitempty"`
}

// bundleLogs is logs.json: the ring contents plus overflow accounting.
type bundleLogs struct {
	Dropped int64       `json:"dropped"`
	Records []LogRecord `json:"records"`
}

// bundleMetrics is metrics.json: the cumulative snapshot plus the
// retained rate windows.
type bundleMetrics struct {
	Snapshot Snapshot     `json:"snapshot"`
	Windows  []RateWindow `json:"windows,omitempty"`
}

// Dump writes one bundle and returns its directory path. The write is
// atomic at the directory level: everything lands under a ".tmp" name
// that only becomes visible (rename + parent fsync) once every file is
// written, so a crash mid-dump leaves a temp directory NewRecorder
// sweeps, never a half-readable bundle.
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("flight: nil recorder")
	}
	r.mu.Lock()
	logSrc := r.logSrc
	rates := r.rates
	statusFn := r.checkerStatus
	config := r.config
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	wall := time.Now()
	name := fmt.Sprintf("%s%s-%03d-%s", bundlePrefix,
		wall.UTC().Format("20060102T150405.000"), seq, sanitizeReason(reason))
	final := filepath.Join(r.dir, name)
	tmp := final + bundleTmpSuffix
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", fmt.Errorf("flight: create bundle tmp: %w", err)
	}
	// A failed dump must not leave the temp dir behind for ListBundles'
	// callers to trip on; the rename below makes cleanup a no-op on
	// success.
	defer os.RemoveAll(tmp)

	meta := BundleMeta{
		Version: BundleVersion, Node: r.node, Reason: reason,
		WallAt: wall.UnixNano(), At: r.o.Now(), LC: r.o.LC(),
		GitSHA: buildGitSHA(), GoVersion: runtime.Version(),
		PID: os.Getpid(), Config: config,
	}
	if err := writeJSON(filepath.Join(tmp, bundleMetaFile), meta); err != nil {
		return "", err
	}

	logs := bundleLogs{Dropped: logSrc.LogDropped(), Records: r.filterLogs(logSrc.LogRecords())}
	if err := writeJSON(filepath.Join(tmp, bundleLogsFile), logs); err != nil {
		return "", err
	}

	f, err := os.Create(filepath.Join(tmp, bundleTraceFile))
	if err != nil {
		return "", fmt.Errorf("flight: create trace: %w", err)
	}
	err = EncodeTrace(f, r.filterTrace(r.o.Events()))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("flight: encode trace: %w", err)
	}

	metrics := bundleMetrics{Snapshot: r.o.Snapshot(), Windows: rates.Windows()}
	if err := writeJSON(filepath.Join(tmp, bundleMetricsFile), metrics); err != nil {
		return "", err
	}

	if statusFn != nil {
		if err := writeJSON(filepath.Join(tmp, bundleCheckerFile), statusFn()); err != nil {
			return "", err
		}
	}

	gf, err := os.Create(filepath.Join(tmp, bundleGorosFile))
	if err == nil {
		err = pprof.Lookup("goroutine").WriteTo(gf, 2)
		if cerr := gf.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return "", fmt.Errorf("flight: goroutine profile: %w", err)
	}

	hf, err := os.Create(filepath.Join(tmp, bundleHeapFile))
	if err == nil {
		err = pprof.Lookup("heap").WriteTo(hf, 0)
		if cerr := hf.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return "", fmt.Errorf("flight: heap profile: %w", err)
	}

	if err := os.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("flight: publish bundle: %w", err)
	}
	syncDir(r.dir)
	return final, nil
}

// TryDump is Dump behind a rate limit for triggers that can fire in a
// storm (checker violations, repeated kill windows): at most one bundle
// per MinGap, extra triggers dropped. Errors are returned to the caller
// but never panic — the recorder must not take the node down.
func (r *Recorder) TryDump(reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	gap := r.MinGap
	if gap <= 0 {
		gap = DefaultMinDumpGap
	}
	now := time.Now().UnixNano()
	for {
		last := r.lastDump.Load()
		if last != 0 && now-last < int64(gap) {
			return "", nil
		}
		if r.lastDump.CompareAndSwap(last, now) {
			break
		}
	}
	return r.Dump(reason)
}

// OnPanic is a defer helper: on panic it dumps a bundle and re-panics,
// so the crash still surfaces but ships its evidence first.
//
//	defer rec.OnPanic()
func (r *Recorder) OnPanic() {
	if r == nil {
		return
	}
	if p := recover(); p != nil {
		r.Dump(fmt.Sprintf("panic-%.40s", fmt.Sprint(p)))
		panic(p)
	}
}

// NotifySignals dumps a bundle on each SIGQUIT (the classic "dump your
// state" signal) instead of the Go runtime's default stack-dump-and-exit.
// Returns a stop function detaching the handler.
func (r *Recorder) NotifySignals() func() {
	if r == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				r.TryDump("sigquit")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// filterLogs keeps records belonging to this recorder's node: its own
// plus unattributed ones (package-level loggers with no binding). With
// no node set, everything passes.
func (r *Recorder) filterLogs(recs []LogRecord) []LogRecord {
	if r.node == "" {
		return recs
	}
	out := recs[:0:0]
	for _, rec := range recs {
		if rec.Node == r.node || rec.Node == "" {
			out = append(out, rec)
		}
	}
	return out
}

// filterTrace keeps this node's trace events. DES runs share one Obs
// across simulated nodes; per-node bundles should each carry their own
// slice of the history so the merge step reconstructs it causally.
func (r *Recorder) filterTrace(events []Event) []Event {
	if r.node == "" {
		return events
	}
	out := events[:0:0]
	for _, e := range events {
		if e.Loc == r.node {
			out = append(out, e)
		}
	}
	return out
}

func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + ('a' - 'A'))
		default:
			b.WriteRune('-')
		}
	}
	s := strings.Trim(b.String(), "-")
	if len(s) > 48 {
		s = s[:48]
	}
	if s == "" {
		return "manual"
	}
	return s
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("flight: marshal %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("flight: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir fsyncs a directory so the rename publishing a bundle is
// durable — same discipline as the store's atomic snapshot rename.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// buildGitSHA extracts the vcs revision stamped into the binary by the
// go tool (absent under plain `go test`, which is fine — bundles from
// tests just omit it).
func buildGitSHA() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}
