package obs

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
)

// Causal trace events. Every layer of the replication stack emits the
// same fixed schema — location, layer, message kind, slot/ballot, span —
// into a fixed-size ring buffer, so a transaction can be followed from
// client submit through broadcast propose, consensus decide, replica
// execute, and reply. The discrete-event simulator emits the identical
// schema with virtual timestamps, making DES runs and real TCP runs
// diffable. A recorded trace replays through the property registry via
// internal/obs/bridge, turning the bounded verifier into a Derecho-style
// runtime checker.

// The layers an event can originate from.
const (
	LayerRuntime   = "runtime"
	LayerNetwork   = "network"
	LayerBroadcast = "broadcast"
	LayerConsensus = "consensus"
	LayerCore      = "core"
	LayerDES       = "des"
	LayerFault     = "fault"
)

// NoField marks an absent Slot or Ballot.
const NoField int64 = -1

// Event is one structured trace record.
type Event struct {
	// Seq is the record's position in its buffer (monotone per Obs).
	Seq int64 `json:"seq"`
	// At is the timestamp in nanoseconds: wall-clock UnixNano by default,
	// virtual time under the simulator's clock.
	At int64 `json:"at"`
	// Loc is the emitting location.
	Loc msg.Loc `json:"loc"`
	// Layer names the module boundary the event crossed.
	Layer string `json:"layer"`
	// Kind classifies the event within its layer ("step", "bc.propose",
	// "px.decide", "pbr.elected", ...).
	Kind string `json:"kind"`
	// Hdr is the message header involved, if any.
	Hdr string `json:"hdr,omitempty"`
	// Slot is the consensus instance / broadcast slot (NoField if n/a).
	Slot int64 `json:"slot"`
	// Ballot is the consensus ballot / round number (NoField if n/a).
	Ballot int64 `json:"ballot"`
	// Span identifies the client message or transaction the event belongs
	// to ("client/seq"), linking the stages of one submission.
	Span string `json:"span,omitempty"`
	// Trace is the per-request trace ID propagated hop-by-hop through
	// message envelopes: every event caused (transitively) by one client
	// request carries that request's ID, even when the triggering message
	// body no longer names the request (consensus rounds, batches).
	Trace string `json:"trace,omitempty"`
	// LC is the node's Lamport clock at the event (0 when unknown).
	// Events from different nodes sort causally on it: if event a
	// happened-before event b, a.LC < b.LC.
	LC int64 `json:"lc,omitempty"`
	// Note carries free-form detail (batch sizes, peer names).
	Note string `json:"note,omitempty"`
	// M is the full delivered message, when the event records a process
	// step; the trace->verify bridge replays these. Nil otherwise.
	M *msg.Msg `json:"-"`
	// Outs are the outputs of the step, when M is set.
	Outs []msg.Directive `json:"-"`
}

// String renders the event compactly for logs and the JSON endpoint.
func (e Event) String() string {
	s := fmt.Sprintf("%d %s/%s %s", e.At, e.Layer, e.Loc, e.Kind)
	if e.Hdr != "" {
		s += " " + e.Hdr
	}
	if e.Slot != NoField {
		s += fmt.Sprintf(" slot=%d", e.Slot)
	}
	if e.Ballot != NoField {
		s += fmt.Sprintf(" ballot=%d", e.Ballot)
	}
	if e.Span != "" {
		s += " span=" + e.Span
	}
	if e.Trace != "" && e.Trace != e.Span {
		s += " trace=" + e.Trace
	}
	if e.LC != 0 {
		s += fmt.Sprintf(" lc=%d", e.LC)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Ev constructs an Event for loc with absent Slot/Ballot — the usual
// starting point for metrics-adjacent records (dials, elections,
// snapshots) that have no consensus coordinates.
func Ev(loc msg.Loc, layer, kind string) Event {
	return Event{Loc: loc, Layer: layer, Kind: kind, Slot: NoField, Ballot: NoField}
}

// ----------------------------------------------------------- extractors --

// Fields are the protocol-specific coordinates of a message, extracted by
// the protocol package that owns the message type. obs sits below the
// protocol packages, so they register extractors instead of obs importing
// them.
type Fields struct {
	Slot   int64
	Ballot int64
	Span   string
	Kind   string
}

// NoFields returns a Fields with every coordinate absent.
func NoFields() Fields { return Fields{Slot: NoField, Ballot: NoField} }

// Extractor recognizes a message body and returns its coordinates.
type Extractor func(hdr string, body any) (Fields, bool)

var (
	extractMu  sync.Mutex
	extractors []Extractor
)

// RegisterExtractor adds a message-coordinate extractor; protocol
// packages call this from init.
func RegisterExtractor(fn Extractor) {
	extractMu.Lock()
	defer extractMu.Unlock()
	extractors = append(extractors, fn)
}

// Extract runs the registered extractors over a message.
func Extract(hdr string, body any) Fields {
	extractMu.Lock()
	fns := extractors
	extractMu.Unlock()
	for _, fn := range fns {
		if f, ok := fn(hdr, body); ok {
			if f.Slot == 0 && f.Ballot == 0 && f.Kind == "" && f.Span == "" {
				// Guard against zero-valued Fields from sloppy extractors.
				f.Slot, f.Ballot = NoField, NoField
			}
			return f
		}
	}
	return NoFields()
}

// ----------------------------------------------------------- conversion --

// Merge combines per-node trace downloads into one ordered trace (by
// timestamp, then buffer sequence).
func Merge(traces ...[]Event) []Event {
	var out []Event
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// MergeCausal combines per-node trace downloads into one causally ordered
// trace. When every event carries a Lamport stamp (LC > 0) the merge
// orders by LC — a linear extension of the happened-before relation, so
// causally related events land in causal order regardless of clock skew
// between nodes. Traces with unstamped events fall back to the timestamp
// merge of Merge (mixing LC-major and At-major comparisons is not
// transitive, so the fallback is all-or-nothing).
func MergeCausal(traces ...[]Event) []Event {
	var out []Event
	stamped := true
	for _, t := range traces {
		for _, e := range t {
			if e.LC <= 0 {
				stamped = false
			}
		}
		out = append(out, t...)
	}
	if !stamped {
		return Merge(traces...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].LC != out[j].LC {
			return out[i].LC < out[j].LC
		}
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Loc != out[j].Loc {
			return out[i].Loc < out[j].Loc
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// RingGap inspects one ring buffer's download for evicted events. Seq is
// assigned contiguously from zero per Obs, so a trace whose smallest Seq
// is s lost its first s events to ring overflow; internal discontinuities
// (which a correct ring never produces) count as missing too. It returns
// the number of missing events.
func RingGap(events []Event) int64 {
	if len(events) == 0 {
		return 0
	}
	min, max := events[0].Seq, events[0].Seq
	for _, e := range events[1:] {
		if e.Seq < min {
			min = e.Seq
		}
		if e.Seq > max {
			max = e.Seq
		}
	}
	return min + (max - min + 1 - int64(len(events)))
}

// FromGPM converts a reference-runner trace into obs events — the
// inverse of GPMTrace. It lets simulated or seeded runs be checked by
// the same trace consumers (bridge, diffing) as live recordings. The +1
// keeps the first entry off timestamp zero, which Record would restamp.
func FromGPM(trace []gpm.TraceEntry) []Event {
	out := make([]Event, len(trace))
	for i, e := range trace {
		m := e.In
		f := Extract(m.Hdr, m.Body)
		kind := f.Kind
		if kind == "" {
			kind = "step"
		}
		out[i] = Event{
			Seq: int64(i), At: int64(e.At) + 1, Loc: e.Loc, Layer: LayerRuntime,
			Kind: kind, Hdr: m.Hdr, Slot: f.Slot, Ballot: f.Ballot, Span: f.Span,
			M: &m, Outs: e.Outs,
		}
	}
	return out
}

// GPMTrace converts the step events of a recorded trace into the
// gpm.TraceEntry form the verification harness checks. Events without a
// recorded message (metrics-only events) are skipped.
func GPMTrace(events []Event) []gpm.TraceEntry {
	ordered := Merge(events)
	var base int64
	var out []gpm.TraceEntry
	for _, e := range ordered {
		if e.M == nil {
			continue
		}
		if len(out) == 0 {
			base = e.At
		}
		out = append(out, gpm.TraceEntry{
			At:       time.Duration(e.At - base),
			Loc:      e.Loc,
			In:       *e.M,
			Outs:     e.Outs,
			CausedBy: -1,
		})
	}
	return out
}

// ------------------------------------------------------------- encoding --

// EncodeTrace writes events as a gob stream. Message bodies must be
// registered with msg.RegisterBody (protocol RegisterWireTypes helpers);
// the binaries already do this at startup.
func EncodeTrace(w io.Writer, events []Event) error {
	if err := gob.NewEncoder(w).Encode(events); err != nil {
		return fmt.Errorf("obs: encode trace: %w", err)
	}
	return nil
}

// DecodeTrace reverses EncodeTrace.
func DecodeTrace(r io.Reader) ([]Event, error) {
	var events []Event
	if err := gob.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("obs: decode trace: %w", err)
	}
	return events, nil
}
