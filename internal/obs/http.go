package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// The admin HTTP endpoint: an expvar-style JSON metrics dump, trace
// download (gob for the bridge, JSON for humans), trace on/off control,
// and the standard pprof handlers — all on an explicit mux so binaries
// can serve it on a dedicated admin port.

// Handler returns the admin mux for an Obs:
//
//	GET  /metrics        JSON metrics snapshot (Prometheus text when the
//	                     Accept header asks for text/plain)
//	GET  /metrics.prom   Prometheus text exposition, unconditionally
//	GET  /trace          gob-encoded trace (feed to DecodeTrace / bridge)
//	GET  /trace.json     human-readable trace
//	POST /trace/start    enable trace recording
//	POST /trace/stop     disable trace recording
//	GET  /healthz        liveness probe
//	     /debug/pprof/*  net/http/pprof
func Handler(o *Obs) http.Handler {
	mux := http.NewServeMux()
	prom := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, o.Snapshot())
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Prometheus scrapers ask for text/plain; everything else (and
		// bare curls, which send Accept: */*) keeps the JSON dump.
		if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") {
			prom(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(o.Snapshot())
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		prom(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := EncodeTrace(w, o.Events()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		events := o.Events()
		type jsonEvent struct {
			Event
			Pretty string `json:"pretty"`
		}
		out := make([]jsonEvent, len(events))
		for i, e := range events {
			out[i] = jsonEvent{Event: e, Pretty: e.String()}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/trace/start", func(w http.ResponseWriter, r *http.Request) {
		o.EnableTracing(true)
		w.Write([]byte("tracing on\n"))
	})
	mux.HandleFunc("/trace/stop", func(w http.ResponseWriter, r *http.Request) {
		o.EnableTracing(false)
		w.Write([]byte("tracing off, " + strconv.Itoa(len(o.Events())) + " events buffered\n"))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the admin endpoint on addr (e.g. "127.0.0.1:7070", or
// ":0" for an ephemeral port) and returns the server plus the bound
// address. The caller owns srv.Close.
func Serve(addr string, o *Obs) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(o)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
