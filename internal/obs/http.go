package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// The admin HTTP endpoint: an expvar-style JSON metrics dump, trace
// download (gob for the bridge, JSON for humans), trace on/off control,
// and the standard pprof handlers — all on an explicit mux so binaries
// can serve it on a dedicated admin port.

// Handler returns the admin mux for an Obs:
//
//	GET  /metrics        JSON metrics snapshot (Prometheus text when the
//	                     Accept header asks for text/plain)
//	GET  /metrics.prom   Prometheus text exposition, unconditionally
//	GET  /trace          gob-encoded trace (feed to DecodeTrace / bridge)
//	GET  /trace.json     human-readable trace
//	POST /trace/start    enable trace recording
//	POST /trace/stop     disable trace recording
//	GET  /logs           structured log ring as JSON (?level= filters,
//	                     ?n= caps the record count from the tail)
//	POST /logs/level     set the log level (body or ?level=)
//	GET  /healthz        liveness probe
//	     /debug/pprof/*  net/http/pprof
//
// HandlerWith additionally wires a flight Recorder:
//
//	GET  /flight         list complete bundles in the recorder's dir
//	POST /flight/dump    dump a bundle now (?reason= names it)
func Handler(o *Obs) http.Handler { return HandlerWith(o, nil) }

// HandlerWith is Handler plus the /flight routes when rec is non-nil.
func HandlerWith(o *Obs, rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	prom := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, o.Snapshot())
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Prometheus scrapers ask for text/plain; everything else (and
		// bare curls, which send Accept: */*) keeps the JSON dump.
		if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") {
			prom(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(o.Snapshot())
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		prom(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := EncodeTrace(w, o.Events()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		events := o.Events()
		type jsonEvent struct {
			Event
			Pretty string `json:"pretty"`
		}
		out := make([]jsonEvent, len(events))
		for i, e := range events {
			out[i] = jsonEvent{Event: e, Pretty: e.String()}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/trace/start", func(w http.ResponseWriter, r *http.Request) {
		o.EnableTracing(true)
		w.Write([]byte("tracing on\n"))
	})
	mux.HandleFunc("/trace/stop", func(w http.ResponseWriter, r *http.Request) {
		o.EnableTracing(false)
		w.Write([]byte("tracing off, " + strconv.Itoa(len(o.Events())) + " events buffered\n"))
	})
	mux.HandleFunc("/logs", func(w http.ResponseWriter, r *http.Request) {
		records := o.LogRecords()
		if s := r.URL.Query().Get("level"); s != "" {
			lv, err := ParseLevel(s)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			kept := records[:0]
			for _, rec := range records {
				if rec.Level >= lv {
					kept = append(kept, rec)
				}
			}
			records = kept
		}
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(records) {
				records = records[len(records)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Level   string      `json:"level"`
			Dropped int64       `json:"dropped"`
			Records []LogRecord `json:"records"`
		}{o.LogLevel().String(), o.LogDropped(), records})
	})
	mux.HandleFunc("/logs/level", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s := r.URL.Query().Get("level")
		if s == "" {
			body, _ := io.ReadAll(io.LimitReader(r.Body, 64))
			s = strings.TrimSpace(string(body))
		}
		lv, err := ParseLevel(s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		o.SetLogLevel(lv)
		w.Write([]byte("log level " + lv.String() + "\n"))
	})
	if rec != nil {
		mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
			dirs, err := ListBundles(rec.Dir())
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(struct {
				Dir     string   `json:"dir"`
				Bundles []string `json:"bundles"`
			}{rec.Dir(), dirs})
		})
		mux.HandleFunc("/flight/dump", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			reason := r.URL.Query().Get("reason")
			if reason == "" {
				reason = "manual"
			}
			dir, err := rec.Dump(reason)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write([]byte(dir + "\n"))
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the admin endpoint on addr (e.g. "127.0.0.1:7070", or
// ":0" for an ephemeral port) and returns the server plus the bound
// address. The caller owns srv.Close.
func Serve(addr string, o *Obs) (*http.Server, string, error) {
	return ServeWith(addr, o, nil)
}

// ServeWith is Serve with a flight Recorder behind /flight.
func ServeWith(addr string, o *Obs, rec *Recorder) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: HandlerWith(o, rec)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
