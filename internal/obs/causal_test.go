package obs_test

import (
	"bytes"
	"sync"
	"testing"

	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

func TestLamportTickWitness(t *testing.T) {
	o := obs.New(16)
	if got := o.Tick(); got != 1 {
		t.Fatalf("first Tick = %d, want 1", got)
	}
	if got := o.Tick(); got != 2 {
		t.Fatalf("second Tick = %d, want 2", got)
	}
	// Witnessing a remote clock ahead of ours jumps past it.
	if got := o.Witness(10); got != 11 {
		t.Fatalf("Witness(10) = %d, want 11", got)
	}
	// Witnessing a remote clock behind ours still advances.
	if got := o.Witness(3); got != 12 {
		t.Fatalf("Witness(3) = %d, want 12", got)
	}
	if got := o.LC(); got != 12 {
		t.Fatalf("LC = %d, want 12", got)
	}
	// Nil receivers are inert (hosts before Start, des without Observe).
	var nilObs *obs.Obs
	if nilObs.Tick() != 0 || nilObs.Witness(5) != 0 || nilObs.LC() != 0 {
		t.Fatal("nil Obs clock is not inert")
	}
}

func TestLamportWitnessConcurrent(t *testing.T) {
	o := obs.New(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(r int64) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				o.Witness(r)
			}
		}(int64(i * 100))
	}
	wg.Wait()
	// 8000 witnesses each advance the clock by at least one.
	if got := o.LC(); got < 8000 {
		t.Fatalf("LC after 8000 witnesses = %d, want >= 8000", got)
	}
}

func TestRecordStampsTraceAndLC(t *testing.T) {
	o := obs.New(16)
	o.EnableTracing(true)
	o.Witness(41) // clock at 42
	o.Record(obs.Ev("n1", obs.LayerRuntime, "step"))
	evs := o.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].LC != 42 {
		t.Errorf("Record did not stamp LC: got %d, want 42", evs[0].LC)
	}
	// An explicit LC survives.
	e := obs.Ev("n1", obs.LayerRuntime, "step")
	e.LC = 7
	o.Record(e)
	if evs := o.Events(); evs[1].LC != 7 {
		t.Errorf("explicit LC overwritten: got %d", evs[1].LC)
	}
}

func TestSinksSeeEveryRecord(t *testing.T) {
	o := obs.New(4)
	o.EnableTracing(true)
	var mu sync.Mutex
	var got []obs.Event
	o.AddSink(func(e obs.Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	// Record more than the ring holds: the sink sees all of them even
	// though the ring evicts — online checking is not bounded by ring
	// capacity.
	o.Tick()
	for i := 0; i < 10; i++ {
		o.Record(obs.Ev("n1", obs.LayerRuntime, "step"))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("sink saw %d events, want 10", len(got))
	}
	for i, e := range got {
		if e.Seq != int64(i) {
			t.Fatalf("sink event %d has Seq %d", i, e.Seq)
		}
		if e.At == 0 || e.LC == 0 {
			t.Fatalf("sink event %d not stamped: %+v", i, e)
		}
	}
	if len(o.Events()) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(o.Events()))
	}
}

func TestRingGap(t *testing.T) {
	ev := func(seq int64) obs.Event { return obs.Event{Seq: seq} }
	if got := obs.RingGap(nil); got != 0 {
		t.Errorf("RingGap(nil) = %d", got)
	}
	if got := obs.RingGap([]obs.Event{ev(0), ev(1), ev(2)}); got != 0 {
		t.Errorf("contiguous from 0: gap %d", got)
	}
	// Ring overflow evicted the first 5 events.
	if got := obs.RingGap([]obs.Event{ev(5), ev(6), ev(7)}); got != 5 {
		t.Errorf("overflowed ring: gap %d, want 5", got)
	}
	// Internal hole.
	if got := obs.RingGap([]obs.Event{ev(0), ev(2)}); got != 1 {
		t.Errorf("internal hole: gap %d, want 1", got)
	}
	// A real overflowing Obs reports its eviction count.
	o := obs.New(4)
	o.EnableTracing(true)
	for i := 0; i < 9; i++ {
		o.Record(obs.Ev("n1", obs.LayerRuntime, "step"))
	}
	if got := obs.RingGap(o.Events()); got != 5 {
		t.Errorf("overflowed Obs ring: gap %d, want 5", got)
	}
}

func TestMergeCausalOrdersByLamport(t *testing.T) {
	// Two nodes with skewed wall clocks: node B's receive (LC 5) carries
	// an EARLIER timestamp than node A's send (LC 4). The causal merge
	// must order by LC, putting the send first despite the skew.
	a := []obs.Event{
		{Seq: 0, At: 1000, Loc: "a", LC: 2},
		{Seq: 1, At: 1100, Loc: "a", LC: 4},
	}
	b := []obs.Event{
		{Seq: 0, At: 500, Loc: "b", LC: 3},
		{Seq: 1, At: 900, Loc: "b", LC: 5},
	}
	m := obs.MergeCausal(a, b)
	want := []int64{2, 3, 4, 5}
	for i, e := range m {
		if e.LC != want[i] {
			t.Fatalf("merge position %d has LC %d, want %d (%+v)", i, e.LC, want[i], m)
		}
	}
	// With any unstamped event the merge falls back to timestamps
	// entirely (mixing the two comparators is not transitive).
	b[0].LC = 0
	m = obs.MergeCausal(a, b)
	wantAt := []int64{500, 900, 1000, 1100}
	for i, e := range m {
		if e.At != wantAt[i] {
			t.Fatalf("fallback position %d has At %d, want %d", i, e.At, wantAt[i])
		}
	}
}

func TestEventStringShowsCausalCoords(t *testing.T) {
	e := obs.Ev("n1", obs.LayerRuntime, "step")
	e.Span = "c0/1"
	e.Trace = "c0/9"
	e.LC = 17
	s := e.String()
	for _, want := range []string{"span=c0/1", "trace=c0/9", "lc=17"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// Trace equal to the span is elided (it adds nothing).
	e.Trace = e.Span
	if contains(e.String(), "trace=") {
		t.Errorf("String() = %q should elide trace == span", e.String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestEnvelopeCausalFieldsGobRoundTrip(t *testing.T) {
	// The trace context must survive the wire codec (gob encodes the
	// Envelope struct; Trace/LC ride alongside From/To/M).
	env := msg.Envelope{
		From: "a", To: "b",
		M:     msg.M("hdr", nil),
		Trace: "c0/3", LC: 99,
	}
	// Round-trip through the trace encoding used by the admin endpoint,
	// which exercises gob on Event (Trace/LC tagged fields).
	evs := []obs.Event{{Seq: 0, At: 1, Loc: "a", Trace: env.Trace, LC: env.LC, Slot: obs.NoField, Ballot: obs.NoField}}
	var buf bytes.Buffer
	if err := obs.EncodeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := obs.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Trace != "c0/3" || got[0].LC != 99 {
		t.Fatalf("causal fields lost in trace codec: %+v", got[0])
	}
}
