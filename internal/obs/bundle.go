package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"shadowdb/internal/msg"
)

// Reading side of postmortem bundles: load what a Recorder dumped,
// enumerate a bundle directory, and merge bundles from every node of a
// cluster into one causally-ordered cross-node timeline keyed by the
// Lamport clocks both log records and trace events carry.

// Bundle is a loaded postmortem bundle.
type Bundle struct {
	Meta       BundleMeta
	Logs       []LogRecord
	LogDropped int64
	Trace      []Event
	Metrics    Snapshot
	Rates      []RateWindow
	// Checker is checker.json verbatim (shape belongs to dist, which obs
	// cannot import); empty when the bundle had no checker attached.
	Checker json.RawMessage
	// Dir is where the bundle was loaded from.
	Dir string
}

// LoadBundle reads one bundle directory. Trace decoding requires the
// protocol wire types to be registered (RegisterWireTypes in the
// protocol packages) exactly like /trace downloads.
func LoadBundle(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	if err := readJSON(filepath.Join(dir, bundleMetaFile), &b.Meta); err != nil {
		return nil, err
	}
	var logs bundleLogs
	if err := readJSON(filepath.Join(dir, bundleLogsFile), &logs); err != nil {
		return nil, err
	}
	b.Logs, b.LogDropped = logs.Records, logs.Dropped
	f, err := os.Open(filepath.Join(dir, bundleTraceFile))
	if err != nil {
		return nil, fmt.Errorf("flight: open trace: %w", err)
	}
	b.Trace, err = DecodeTrace(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("flight: decode trace: %w", err)
	}
	var metrics bundleMetrics
	if err := readJSON(filepath.Join(dir, bundleMetricsFile), &metrics); err != nil {
		return nil, err
	}
	b.Metrics, b.Rates = metrics.Snapshot, metrics.Windows
	if data, err := os.ReadFile(filepath.Join(dir, bundleCheckerFile)); err == nil {
		b.Checker = json.RawMessage(data)
	}
	return b, nil
}

// ListBundles returns the complete bundle directories under root,
// recursively (a cluster data-dir has one flight dir per node),
// oldest-first by name (names embed the dump wall time). In-flight
// ".tmp" directories are skipped.
func ListBundles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if strings.HasPrefix(name, bundlePrefix) {
			if strings.HasSuffix(name, bundleTmpSuffix) {
				return filepath.SkipDir
			}
			out = append(out, path)
			return filepath.SkipDir // bundles don't nest
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("flight: list bundles: %w", err)
	}
	sort.Slice(out, func(i, j int) bool {
		return filepath.Base(out[i]) < filepath.Base(out[j])
	})
	return out, nil
}

// TimelineEntry is one event on the merged cross-node timeline — a log
// record or a trace event reduced to a common shape.
type TimelineEntry struct {
	At   int64   `json:"at"`
	LC   int64   `json:"lc"`
	Node msg.Loc `json:"node"`
	// Source is "log" or "trace".
	Source string `json:"source"`
	// Text is the rendered record: the log message or the trace event's
	// layer/kind line.
	Text string `json:"text"`
	// Level is set on log entries.
	Level Level `json:"level,omitempty"`
	// Trace is the per-request trace ID when the entry carries one.
	Trace string `json:"trace,omitempty"`

	seq int64 // within-node tiebreak
}

// MergeTimeline merges the log records and trace events of bundles from
// different nodes into one timeline ordered by (LC, At, node, seq): the
// Lamport clock gives the causal order across nodes, At and the
// within-ring sequence break ties, and the node id makes the order
// total and deterministic. Entries whose LC is zero (recorded before
// any clock activity) sort by At alone at the front.
//
// Log records with an empty Node (package-level loggers in multi-node
// processes) are stamped with the bundle's node; when several bundles
// from the same process captured the same shared ring, duplicates are
// collapsed by their pre-stamp identity.
func MergeTimeline(bundles ...*Bundle) []TimelineEntry {
	var out []TimelineEntry
	type sharedKey struct {
		seq int64
		at  int64
		msg string
	}
	seenShared := make(map[sharedKey]bool)
	for _, b := range bundles {
		if b == nil {
			continue
		}
		for _, r := range b.Logs {
			node := r.Node
			if node == "" {
				k := sharedKey{seq: r.Seq, at: r.At, msg: r.Msg}
				if seenShared[k] {
					continue
				}
				seenShared[k] = true
				node = b.Meta.Node
			}
			out = append(out, TimelineEntry{
				At: r.At, LC: r.LC, Node: node, Source: "log",
				Text:  "[" + r.Component + "] " + r.Msg,
				Level: r.Level, Trace: r.Trace, seq: r.Seq,
			})
		}
		for _, e := range b.Trace {
			node := e.Loc
			if node == "" {
				node = b.Meta.Node
			}
			text := e.Layer + "." + e.Kind
			if e.Hdr != "" {
				text += " hdr=" + e.Hdr
			}
			if e.Slot != 0 {
				text += fmt.Sprintf(" slot=%d", e.Slot)
			}
			if e.Note != "" {
				text += " " + e.Note
			}
			out = append(out, TimelineEntry{
				At: e.At, LC: e.LC, Node: node, Source: "trace",
				Text: text, Trace: e.Trace, seq: e.Seq,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.LC != b.LC {
			return a.LC < b.LC
		}
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.seq < b.seq
	})
	return out
}

// String renders a timeline entry as one line.
func (t TimelineEntry) String() string {
	src := t.Source
	if t.Source == "log" {
		src = t.Level.String()
	}
	s := fmt.Sprintf("lc=%-6d %-12s %-6s %s", t.LC, t.Node, src, t.Text)
	if t.Trace != "" {
		s += " trace=" + t.Trace
	}
	return s
}

// Traces regroups the bundles' trace events per node, the shape
// bridge.CheckTraces consumes. Bundles carve per-node slices out of a
// possibly shared ring (DES runs trace a whole cluster into one Obs),
// which leaves per-node Seq values non-contiguous; each node's events
// are re-sequenced from zero so the bridge's ring-overflow accounting
// reads the per-node trace as the complete window it is. Overflow of the
// source ring itself is accounted at dump time, not here.
func Traces(bundles ...*Bundle) map[string][]Event {
	out := make(map[string][]Event)
	for _, b := range bundles {
		if b == nil || len(b.Trace) == 0 {
			continue
		}
		node := string(b.Meta.Node)
		if node == "" {
			node = b.Dir
		}
		out[node] = append(out[node], b.Trace...)
	}
	for node, evs := range out {
		resq := append([]Event(nil), evs...)
		sort.SliceStable(resq, func(i, j int) bool { return resq[i].Seq < resq[j].Seq })
		for i := range resq {
			resq[i].Seq = int64(i)
		}
		out[node] = resq
	}
	return out
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("flight: read %s: %w", filepath.Base(path), err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("flight: parse %s: %w", filepath.Base(path), err)
	}
	return nil
}
