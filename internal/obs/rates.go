package obs

import (
	"sync"
	"time"
)

// Windowed metrics deltas for the flight recorder. The Registry is
// cumulative — perfect for Prometheus scrapes, useless on its own for
// answering "what was the append rate in the two seconds before the
// violation". Rates layers per-interval delta snapshots over it: a
// ticker (wall-clock in binaries, manual Tick in the simulator) diffs
// consecutive Snapshots and keeps the last N windows in a bounded ring,
// which the postmortem bundle dumps alongside the cumulative snapshot.

// DefaultRateKeep is how many windows Rates retains — at the default
// 1s interval, the last minute of per-second deltas.
const DefaultRateKeep = 60

// RateWindow is the delta of every metric over one interval
// [From, To) in the Obs clock's nanoseconds.
type RateWindow struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Counters and HistCounts are increments over the window; Gauges are
	// the end-of-window values (a gauge's delta is rarely meaningful).
	Counters   map[string]int64 `json:"counters,omitempty"`
	Gauges     map[string]int64 `json:"gauges,omitempty"`
	HistCounts map[string]int64 `json:"hist_counts,omitempty"`
	HistSums   map[string]int64 `json:"hist_sums,omitempty"`
}

// DeltaSnapshot diffs two cumulative snapshots into one window. Metrics
// absent from prev (registered mid-window) count from zero; only nonzero
// deltas and gauges are materialized so idle windows stay tiny.
func DeltaSnapshot(prev, cur Snapshot, from, to int64) RateWindow {
	w := RateWindow{From: from, To: to}
	for n, v := range cur.Counters {
		if d := v - prev.Counters[n]; d != 0 {
			if w.Counters == nil {
				w.Counters = make(map[string]int64)
			}
			w.Counters[n] = d
		}
	}
	for n, v := range cur.Gauges {
		if v != 0 || prev.Gauges[n] != 0 {
			if w.Gauges == nil {
				w.Gauges = make(map[string]int64)
			}
			w.Gauges[n] = v
		}
	}
	for n, h := range cur.Histograms {
		if d := h.Count - prev.Histograms[n].Count; d != 0 {
			if w.HistCounts == nil {
				w.HistCounts = make(map[string]int64)
				w.HistSums = make(map[string]int64)
			}
			w.HistCounts[n] = d
			w.HistSums[n] = h.Sum - prev.Histograms[n].Sum
		}
	}
	return w
}

// Rates tracks windowed deltas over an Obs's registry.
type Rates struct {
	o        *Obs
	interval time.Duration

	mu      sync.Mutex
	prev    Snapshot
	prevAt  int64
	windows []RateWindow
	keep    int
	stop    chan struct{}
}

// NewRates creates a tracker over o taking one window per interval,
// retaining the last keep windows (defaults: 1s, DefaultRateKeep).
// Call Start for wall-clock ticking or Tick manually (DES runs tick at
// virtual-time boundaries).
func NewRates(o *Obs, interval time.Duration, keep int) *Rates {
	if interval <= 0 {
		interval = time.Second
	}
	if keep <= 0 {
		keep = DefaultRateKeep
	}
	return &Rates{
		o: o, interval: interval, keep: keep,
		prev: o.Snapshot(), prevAt: o.Now(),
	}
}

// Tick closes the current window: diff against the previous snapshot,
// append the delta, and rebase. Safe from any goroutine.
func (r *Rates) Tick() {
	if r == nil {
		return
	}
	cur := r.o.Snapshot()
	at := r.o.Now()
	r.mu.Lock()
	w := DeltaSnapshot(r.prev, cur, r.prevAt, at)
	r.prev, r.prevAt = cur, at
	r.windows = append(r.windows, w)
	if len(r.windows) > r.keep {
		r.windows = r.windows[len(r.windows)-r.keep:]
	}
	r.mu.Unlock()
}

// Windows returns the retained windows oldest-first.
func (r *Rates) Windows() []RateWindow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RateWindow, len(r.windows))
	copy(out, r.windows)
	return out
}

// Start launches a wall-clock ticker goroutine calling Tick every
// interval until Stop. Idempotent while running.
func (r *Rates) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	r.stop = stop
	r.mu.Unlock()
	go func() {
		t := time.NewTicker(r.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Tick()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the ticker started by Start (no-op if not running).
func (r *Rates) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.stop != nil {
		close(r.stop)
		r.stop = nil
	}
	r.mu.Unlock()
}
