package obs_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"shadowdb/internal/obs"
)

func TestDumpAndLoadBundle(t *testing.T) {
	o := obs.New(64)
	o.SetNode("n1")
	o.EnableTracing(true)
	o.Counter("z.ops").Add(9)
	o.Tick()
	o.Logger("store").Infof("replayed %d entries", 4)
	o.Record(obs.Event{Loc: "n1", Layer: "test", Kind: "probe", Note: "hello"})

	rates := obs.NewRates(o, time.Second, 4)
	o.Counter("z.ops").Add(2)
	rates.Tick()

	dir := filepath.Join(t.TempDir(), "flight")
	rec, err := obs.NewRecorder(o, dir, "n1")
	if err != nil {
		t.Fatal(err)
	}
	rec.SetRates(rates)
	rec.SetConfig(map[string]string{"role": "test"})
	rec.SetCheckerStatus(func() any { return map[string]int{"violations": 0} })

	path, err := rec.Dump("unit-test")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filepath.Base(path), "unit-test") {
		t.Fatalf("bundle name %q missing reason", path)
	}

	b, err := obs.LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.Version != obs.BundleVersion || b.Meta.Node != "n1" || b.Meta.Reason != "unit-test" {
		t.Fatalf("meta = %+v", b.Meta)
	}
	if b.Meta.Config["role"] != "test" || b.Meta.PID != os.Getpid() {
		t.Fatalf("meta config/pid = %+v", b.Meta)
	}
	if len(b.Logs) != 1 || b.Logs[0].Msg != "replayed 4 entries" || b.Logs[0].LC != 1 {
		t.Fatalf("logs = %+v", b.Logs)
	}
	if len(b.Trace) != 1 || b.Trace[0].Kind != "probe" {
		t.Fatalf("trace = %+v", b.Trace)
	}
	if b.Metrics.Counters["z.ops"] != 11 {
		t.Fatalf("metrics snapshot = %+v", b.Metrics.Counters)
	}
	if len(b.Rates) != 1 || b.Rates[0].Counters["z.ops"] != 2 {
		t.Fatalf("rate windows = %+v", b.Rates)
	}
	if !strings.Contains(string(b.Checker), "violations") {
		t.Fatalf("checker = %s", b.Checker)
	}
	for _, f := range []string{"goroutines.txt", "heap.pprof"} {
		if fi, err := os.Stat(filepath.Join(path, f)); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty: %v", f, err)
		}
	}

	dirs, err := obs.ListBundles(dir)
	if err != nil || len(dirs) != 1 || dirs[0] != path {
		t.Fatalf("ListBundles = %v, %v", dirs, err)
	}
}

func TestBundleAtomicitySweep(t *testing.T) {
	// A crashed dump leaves only a ".tmp" directory. ListBundles must
	// skip it and a fresh Recorder (the restarted process) sweeps it.
	dir := filepath.Join(t.TempDir(), "flight")
	stale := filepath.Join(dir, "bundle-20240101T000000.000-001-killed.tmp")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "meta.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	dirs, err := obs.ListBundles(dir)
	if err != nil || len(dirs) != 0 {
		t.Fatalf("ListBundles saw the tmp dir: %v, %v", dirs, err)
	}

	if _, err := obs.NewRecorder(obs.New(16), dir, "n1"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("tmp bundle not swept: %v", err)
	}
}

func TestDumpWhileLogging(t *testing.T) {
	// Dumps racing live loggers and tracers must produce only complete,
	// loadable bundles.
	o := obs.New(256)
	o.SetNode("n1")
	o.SetLogCap(256)
	o.EnableTracing(true)
	dir := filepath.Join(t.TempDir(), "flight")
	rec, err := obs.NewRecorder(o, dir, "n1")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lg := o.Logger("load")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lg.Infof("g%d i%d", g, i)
				o.Record(obs.Event{Loc: "n1", Layer: "test", Kind: "tick"})
			}
		}(g)
	}

	var paths []string
	for i := 0; i < 5; i++ {
		p, err := rec.Dump("race")
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	close(stop)
	wg.Wait()

	for _, p := range paths {
		if _, err := obs.LoadBundle(p); err != nil {
			t.Fatalf("bundle %s unreadable: %v", p, err)
		}
	}
	dirs, _ := obs.ListBundles(dir)
	if len(dirs) != len(paths) {
		t.Fatalf("ListBundles = %d, want %d", len(dirs), len(paths))
	}
}

func TestTryDumpRateLimit(t *testing.T) {
	o := obs.New(16)
	rec, err := obs.NewRecorder(o, filepath.Join(t.TempDir(), "f"), "n1")
	if err != nil {
		t.Fatal(err)
	}
	rec.MinGap = time.Hour
	p1, err := rec.TryDump("first")
	if err != nil || p1 == "" {
		t.Fatalf("first TryDump = %q, %v", p1, err)
	}
	p2, err := rec.TryDump("second")
	if err != nil || p2 != "" {
		t.Fatalf("second TryDump not suppressed: %q, %v", p2, err)
	}
}

func TestMergeTimelineCausalOrder(t *testing.T) {
	// Two nodes, Lamport-stamped: n1 sends (lc 1), n2 receives (lc 2)
	// and logs (lc 2), n1 logs later at lc 3. Wall clocks are skewed so
	// At-order would be wrong; the merge must follow LC.
	b1 := &obs.Bundle{
		Meta: obs.BundleMeta{Node: "n1"},
		Logs: []obs.LogRecord{{Seq: 0, At: 900, LC: 3, Node: "n1", Component: "c", Level: obs.LevelInfo, Msg: "late"}},
		Trace: []obs.Event{
			{Seq: 0, At: 1000, LC: 1, Loc: "n1", Layer: "net", Kind: "send"},
		},
	}
	b2 := &obs.Bundle{
		Meta: obs.BundleMeta{Node: "n2"},
		Logs: []obs.LogRecord{{Seq: 0, At: 50, LC: 2, Component: "c", Level: obs.LevelWarn, Msg: "got it"}},
		Trace: []obs.Event{
			{Seq: 0, At: 60, LC: 2, Loc: "n2", Layer: "net", Kind: "recv"},
		},
	}
	tl := obs.MergeTimeline(b1, b2)
	if len(tl) != 4 {
		t.Fatalf("timeline has %d entries: %+v", len(tl), tl)
	}
	var kinds []string
	for _, e := range tl {
		kinds = append(kinds, string(e.Node)+":"+e.Source)
		if e.Node == "" {
			t.Fatalf("entry missing node: %+v", e)
		}
	}
	// lc1 send, then lc2 (n2 recv at At=60 after log at At=50), then lc3.
	want := []string{"n1:trace", "n2:log", "n2:trace", "n1:log"}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("order = %v, want %v", kinds, want)
		}
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].LC < tl[i-1].LC {
			t.Fatalf("LC order violated at %d: %+v", i, tl)
		}
	}

	traces := obs.Traces(b1, b2)
	if len(traces["n1"]) != 1 || len(traces["n2"]) != 1 {
		t.Fatalf("Traces grouping = %+v", traces)
	}
}

func TestMergeTimelineDedupSharedRing(t *testing.T) {
	// Two bundles from the same process captured the same unattributed
	// record (empty Node): it must appear once, stamped with a node.
	shared := obs.LogRecord{Seq: 7, At: 100, LC: 1, Component: "c", Msg: "shared"}
	b1 := &obs.Bundle{Meta: obs.BundleMeta{Node: "n1"}, Logs: []obs.LogRecord{shared}}
	b2 := &obs.Bundle{Meta: obs.BundleMeta{Node: "n2"}, Logs: []obs.LogRecord{shared}}
	tl := obs.MergeTimeline(b1, b2)
	if len(tl) != 1 {
		t.Fatalf("shared record not deduped: %+v", tl)
	}
	if tl[0].Node != "n1" {
		t.Fatalf("dedup kept node %q", tl[0].Node)
	}
}
