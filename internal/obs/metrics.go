package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The metrics side of the observability subsystem: lock-free atomic
// counters, gauges, and log-bucketed latency histograms with a consistent
// snapshot API. Handles are cheap pointers; hot paths cache them once and
// then pay a single atomic add per update.

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that goes up and down (queue depths, connection
// counts).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per bit of a non-negative int64 (bucket i
// holds values whose bit length is i), so bucket boundaries grow
// geometrically: 0, 1, 2-3, 4-7, ... — the usual log-bucketed latency
// histogram shape.
const histBuckets = 65

// Histogram is a lock-free log-bucketed histogram of int64 observations
// (by convention nanoseconds for latencies, plain counts otherwise).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveDuration records a latency sample.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns an estimate of the q-th quantile (0 < q <= 1): the
// midpoint of the bucket holding the q-th observation, clamped to the
// observed maximum. Log buckets bound the relative error by 2x.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= rank {
			return h.bucketMid(b)
		}
	}
	return h.max.Load()
}

func (h *Histogram) bucketMid(b int) int64 {
	if b == 0 {
		return 0
	}
	lo := int64(1) << (b - 1)
	hi := lo*2 - 1
	mid := lo + (hi-lo)/2
	if m := h.max.Load(); mid > m {
		return m
	}
	return mid
}

// HistBucket is one cumulative histogram bucket point: Cum observations
// were <= Le. Only occupied buckets are materialized (log buckets give 65
// slots but real latency distributions occupy a handful).
type HistBucket struct {
	Le  int64 `json:"le"`
	Cum int64 `json:"cum"`
}

// HistogramSummary is a histogram's snapshot: count, mean and the
// p50/p95/p99 tail the ISSUE-facing dashboards read.
type HistogramSummary struct {
	Count int64 `json:"count"`
	// Sum is the total of all observations (needed by Prometheus summary
	// exposition, where rate(sum)/rate(count) gives the rolling mean).
	Sum  int64 `json:"sum"`
	Mean int64 `json:"mean"`
	P50  int64 `json:"p50"`
	P95  int64 `json:"p95"`
	P99  int64 `json:"p99"`
	Max  int64 `json:"max"`
	// Buckets are the cumulative bucket points for the occupied buckets,
	// ascending by Le — the raw distribution behind the quantiles, and
	// what the Prometheus histogram exposition renders as _bucket{le=}.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Summary captures the histogram's current state.
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	s := HistogramSummary{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if s.Count > 0 {
		s.Mean = s.Sum / s.Count
	}
	s.P50 = h.Quantile(0.50)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	var cum int64
	for b := 0; b < histBuckets; b++ {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		cum += n
		// Bucket b holds values of bit length b: upper bound 2^b - 1
		// (bucket 0 holds exactly zero).
		le := int64(0)
		if b > 0 && b < 63 {
			le = int64(1)<<b - 1
		} else if b >= 63 {
			le = int64(^uint64(0) >> 1) // MaxInt64
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, Cum: cum})
	}
	return s
}

// Registry is a named collection of metrics. Lookup by name takes a read
// lock; hot paths should look a handle up once and keep it.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-marshalable dump of every metric.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]int64            `json:"gauges"`
	Histograms map[string]HistogramSummary `json:"histograms"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSummary),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Summary()
	}
	return s
}

// Names returns every metric name, sorted — handy for stable rendering.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
