package obs_test

import (
	"testing"

	"shadowdb/internal/obs"
)

func TestDeltaSnapshot(t *testing.T) {
	o := obs.New(16)
	c := o.Counter("x.appends")
	g := o.Gauge("x.depth")
	h := o.Histogram("x.lat")

	c.Add(5)
	g.Set(2)
	h.Observe(10)
	prev := o.Snapshot()

	c.Add(3)
	g.Set(7)
	h.Observe(20)
	h.Observe(30)
	cur := o.Snapshot()

	w := obs.DeltaSnapshot(prev, cur, 100, 200)
	if w.From != 100 || w.To != 200 {
		t.Fatalf("window bounds %d..%d", w.From, w.To)
	}
	if w.Counters["x.appends"] != 3 {
		t.Fatalf("counter delta = %d, want 3", w.Counters["x.appends"])
	}
	if w.Gauges["x.depth"] != 7 {
		t.Fatalf("gauge = %d, want end-of-window 7", w.Gauges["x.depth"])
	}
	if w.HistCounts["x.lat"] != 2 || w.HistSums["x.lat"] != 50 {
		t.Fatalf("hist delta = %d/%d, want 2/50", w.HistCounts["x.lat"], w.HistSums["x.lat"])
	}

	// An idle window materializes nothing (gauges at zero stay absent).
	idle := obs.DeltaSnapshot(cur, cur, 200, 300)
	if len(idle.Counters) != 0 || len(idle.HistCounts) != 0 {
		t.Fatalf("idle window not empty: %+v", idle)
	}
}

func TestRatesTickAndRetention(t *testing.T) {
	o := obs.New(16)
	c := o.Counter("y.ops")
	r := obs.NewRates(o, 0, 3) // keep only 3 windows

	for i := 1; i <= 5; i++ {
		c.Add(int64(i))
		r.Tick()
	}
	ws := r.Windows()
	if len(ws) != 3 {
		t.Fatalf("retained %d windows, want 3", len(ws))
	}
	// The last three ticks added 3, 4, 5.
	for i, want := range []int64{3, 4, 5} {
		if got := ws[i].Counters["y.ops"]; got != want {
			t.Fatalf("window %d delta = %d, want %d", i, got, want)
		}
	}
}

func TestRatesNilSafety(t *testing.T) {
	var r *obs.Rates
	r.Tick()
	r.Start()
	r.Stop()
	if w := r.Windows(); w != nil {
		t.Fatalf("nil Rates windows = %v", w)
	}
}
