package fault

import (
	"testing"
	"time"

	"shadowdb/internal/des"
	"shadowdb/internal/msg"
)

// pingCluster wires two DES nodes that ping-pong forever (each reply
// after 10ms), plus a counter of deliveries at b.
func pingCluster(p Plan) (sim *des.Sim, delivered *int, fp func() uint64) {
	sim = &des.Sim{}
	clu := des.NewCluster(sim)
	n := 0
	delivered = &n
	mk := func(self, peer msg.Loc, count bool) des.Handler {
		return func(env des.Envelope) []msg.Directive {
			if count {
				n++
			}
			return []msg.Directive{msg.SendAfter(10*time.Millisecond, peer, env.M)}
		}
	}
	clu.AddNode("a", 1, nil, mk("a", "b", false))
	clu.AddNode("b", 1, nil, mk("b", "a", true))
	inj := BindCluster(clu, p)
	clu.Send("external", "a", msg.M("ping", nil))
	return sim, delivered, inj.Fingerprint
}

func TestBindClusterPartitionWindow(t *testing.T) {
	// a->b cut during [1s,2s): b's delivery rate dips while the window
	// is open and resumes after it heals.
	plan := Plan{Partitions: []Partition{
		{From: Duration(time.Second), To: Duration(2 * time.Second), A: []msg.Loc{"a"}, B: []msg.Loc{"b"}},
	}}
	sim, delivered, _ := pingCluster(plan)
	// Run just past the window open so messages judged before 1s (and
	// still in flight across it) are counted as "before" traffic —
	// faults are judged at send time, not delivery time.
	sim.Run(1020*time.Millisecond, 1_000_000)
	before := *delivered
	if before == 0 {
		t.Fatal("no traffic before the partition")
	}
	sim.Run(1900*time.Millisecond, 1_000_000)
	during := *delivered - before
	if during > 1 {
		t.Fatalf("partition open but b received %d messages", during)
	}
	// The ping-pong ball was dropped inside the window — exactly what a
	// partition does to an unacknowledged protocol — so nothing more
	// arrives until new traffic is injected.
	sim.Run(3*time.Second, 1_000_000)
	if *delivered != before+during {
		t.Fatalf("unexpected deliveries after ball dropped: %d", *delivered)
	}
}

func TestBindClusterCrashRestart(t *testing.T) {
	// b crashes at 500ms and restarts (state retained) at 700ms. The
	// ping-pong ball is lost while b is down; send a fresh ball after
	// restart and the pair keeps counting.
	sim := &des.Sim{}
	clu := des.NewCluster(sim)
	delivered := 0
	clu.AddNode("a", 1, nil, func(env des.Envelope) []msg.Directive {
		return []msg.Directive{msg.SendAfter(10*time.Millisecond, "b", env.M)}
	})
	clu.AddNode("b", 1, nil, func(env des.Envelope) []msg.Directive {
		delivered++
		return []msg.Directive{msg.SendAfter(10*time.Millisecond, "a", env.M)}
	})
	BindCluster(clu, Plan{Crashes: []Crash{
		{At: Duration(500 * time.Millisecond), Node: "b", RestartAfter: Duration(200 * time.Millisecond)},
	}})
	clu.Send("external", "a", msg.M("ping", nil))
	sim.At(time.Second, func() { clu.Send("external", "b", msg.M("ping", nil)) })

	sim.Run(600*time.Millisecond, 1_000_000)
	if !clu.Node("b").Crashed() {
		t.Fatal("b should be crashed at 600ms")
	}
	atCrash := delivered
	if atCrash == 0 {
		t.Fatal("no traffic before crash")
	}
	sim.Run(800*time.Millisecond, 1_000_000)
	if clu.Node("b").Crashed() {
		t.Fatal("b should have restarted at 800ms")
	}
	sim.Run(2*time.Second, 1_000_000)
	if delivered <= atCrash {
		t.Fatal("b processed nothing after restart")
	}
}

func TestBindClusterStateLossRestart(t *testing.T) {
	// A counting node restarts with state loss: its OnRestart hook
	// rebinds a fresh handler, modeling a process restarted from its
	// initial image.
	sim := &des.Sim{}
	clu := des.NewCluster(sim)
	mkHandler := func() des.Handler {
		count := 0
		return func(env des.Envelope) []msg.Directive {
			count++
			if count == 1 {
				return []msg.Directive{msg.Send("probe", msg.M("first", nil))}
			}
			return nil
		}
	}
	firsts := 0
	clu.AddNode("probe", 1, nil, func(env des.Envelope) []msg.Directive {
		firsts++
		return nil
	})
	n := clu.AddNode("svc", 1, nil, mkHandler())
	n.OnRestart = func(lost bool) {
		if lost {
			n.Rebind(mkHandler())
		}
	}
	BindCluster(clu, Plan{Crashes: []Crash{
		{At: Duration(100 * time.Millisecond), Node: "svc", RestartAfter: Duration(50 * time.Millisecond), LoseState: true},
	}})
	for _, at := range []time.Duration{0, 10 * time.Millisecond, 200 * time.Millisecond, 210 * time.Millisecond} {
		at := at
		sim.At(at, func() { clu.Send("external", "svc", msg.M("tick", nil)) })
	}
	sim.Run(time.Second, 1_000_000)
	if firsts != 2 {
		t.Fatalf("state-loss restart should reset the counter: got %d 'first' probes, want 2", firsts)
	}
}

func TestBindClusterFingerprintDeterministic(t *testing.T) {
	plan := Plan{
		Seed:  1234,
		Rules: []Rule{{Match: Match{}, Prob: 0.3, Drop: true}},
	}
	fpOf := func() uint64 {
		sim, _, fp := pingCluster(plan)
		sim.Run(5*time.Second, 1_000_000)
		return fp()
	}
	a, b := fpOf(), fpOf()
	if a != b {
		t.Fatalf("same plan+seed on the simulator must reproduce the injection schedule: %x vs %x", a, b)
	}
}
