package fault

import (
	"fmt"
	"sync"
	"time"

	"shadowdb/internal/msg"
	"shadowdb/internal/obs"
)

// Verdict is the injector's decision for one message.
type Verdict struct {
	// Drop discards the message entirely.
	Drop bool
	// Delay postpones its delivery (reordering it past later sends).
	Delay time.Duration
	// Dup delivers this many extra copies.
	Dup int
}

// Injection is one recorded fault application — the injection log is
// the ground truth a violation is diffed against, and its Fingerprint
// is the reproducibility check.
type Injection struct {
	At   time.Duration `json:"at"`
	Kind string        `json:"kind"` // drop|delay|dup|block|down|up|crash|restart
	Src  msg.Loc       `json:"src,omitempty"`
	Dst  msg.Loc       `json:"dst,omitempty"`
	Hdr  string        `json:"hdr,omitempty"`
	// Rule indexes the firing rule (-1 for partitions and crashes).
	Rule  int           `json:"rule"`
	Delay time.Duration `json:"delay,omitempty"`
	Dup   int           `json:"dup,omitempty"`
}

// Injector applies a Plan to a message stream. It is safe for
// concurrent use (real transports call Judge from many goroutines; the
// simulator is single-threaded).
type Injector struct {
	plan  Plan
	clock func() time.Duration

	mu sync.Mutex
	// seen counts messages considered per (rule, edge, header), keyed by
	// hash: the occurrence number feeds the decision hash, so the n-th
	// matching message on an edge gets the same verdict regardless of
	// interleaving with other edges.
	seen map[uint64]uint64
	// fired counts firings per rule (MaxHits budget).
	fired []int
	down  map[msg.Loc]bool
	log   []Injection

	o       *obs.Obs
	cDrops  *obs.Counter
	cDelays *obs.Counter
	cDups   *obs.Counter
	cBlocks *obs.Counter
}

// lg logs node-level injections (kills, restarts, partitions) so they
// land in the flight-recorder ring alongside the layers they disturb.
var lg = obs.L("fault")

// NewInjector builds an injector over a validated plan. clock is the
// run clock faults are timed against: the simulator's virtual clock
// under DES, nil for wall time since construction.
func NewInjector(p Plan, clock func() time.Duration) *Injector {
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	return &Injector{
		plan:  p,
		clock: clock,
		seen:  make(map[uint64]uint64),
		fired: make([]int, len(p.Rules)),
		down:  make(map[msg.Loc]bool),
	}
}

// SetObs mirrors injections into o: trace events on layer "fault" plus
// fault.drops / fault.delays / fault.dups / fault.blocks counters.
func (in *Injector) SetObs(o *obs.Obs) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.o = o
	in.cDrops = o.Counter("fault.drops")
	in.cDelays = o.Counter("fault.delays")
	in.cDups = o.Counter("fault.dups")
	in.cBlocks = o.Counter("fault.blocks")
}

// Plan returns the plan the injector runs.
func (in *Injector) Plan() Plan { return in.plan }

// Judge decides the fate of one message, sender-side. All active
// matching rules accumulate: any drop wins, delays and duplicates sum.
func (in *Injector) Judge(src, dst msg.Loc, hdr string) Verdict {
	if len(in.plan.Rules) == 0 {
		return Verdict{}
	}
	now := in.clock()
	edge := strHash(string(src)) ^ mix(strHash(string(dst))) ^ strHash(hdr)

	in.mu.Lock()
	defer in.mu.Unlock()
	var v Verdict
	for i, r := range in.plan.Rules {
		if !r.active(now) || !r.Match.Hits(src, dst, hdr) {
			continue
		}
		key := mix(uint64(i)+1) ^ edge
		n := in.seen[key]
		in.seen[key] = n + 1
		if r.MaxHits > 0 && in.fired[i] >= r.MaxHits {
			continue
		}
		h := mix(in.plan.Seed ^ mix(uint64(i)+1) ^ edge ^ mix(n))
		if r.Prob > 0 && unit(h) >= r.Prob {
			continue
		}
		in.fired[i]++
		switch {
		case r.Drop:
			v.Drop = true
			in.record(Injection{At: now, Kind: "drop", Src: src, Dst: dst, Hdr: hdr, Rule: i})
		default:
			d := r.Delay.D()
			if j := r.Jitter.D(); j > 0 {
				d += time.Duration(unit(mix(h)) * float64(j))
			}
			if d > 0 {
				v.Delay += d
				in.record(Injection{At: now, Kind: "delay", Src: src, Dst: dst, Hdr: hdr, Rule: i, Delay: d})
			}
			if r.Dup > 0 {
				v.Dup += r.Dup
				in.record(Injection{At: now, Kind: "dup", Src: src, Dst: dst, Hdr: hdr, Rule: i, Dup: r.Dup})
			}
		}
	}
	return v
}

// Blocked reports whether src→dst traffic is cut right now — by an
// active partition window or by a down endpoint. Unlike Judge it is
// idempotent (no occurrence counting), so both ends of a wrapped
// transport may consult it for the same message.
func (in *Injector) Blocked(src, dst msg.Loc) bool {
	now := in.clock()
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.down[src] || in.down[dst] {
		return true
	}
	for _, p := range in.plan.Partitions {
		if p.active(now) && p.blocks(src, dst) {
			return true
		}
	}
	return false
}

// NoteBlocked records one blocked message (callers that observed
// Blocked()==true and discarded a message report it here).
func (in *Injector) NoteBlocked(src, dst msg.Loc, hdr string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.record(Injection{At: in.clock(), Kind: "block", Src: src, Dst: dst, Hdr: hdr, Rule: -1})
}

// SetDown marks a node dead (true) or alive (false) for Blocked. The
// nemesis uses it to apply Crash windows on real transports, where a
// process cannot be crashed but can be blackholed.
func (in *Injector) SetDown(node msg.Loc, down bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.down[node] = down
	kind := "down"
	if !down {
		kind = "up"
	}
	in.record(Injection{At: in.clock(), Kind: kind, Dst: node, Rule: -1})
}

// SlowFactor returns the execution-cost multiplier currently applied
// to node: the product of every active SlowDisk window naming it, 1
// when none. Costed simulator handlers multiply their reported cost by
// it; the plan is immutable, so only the clock read needs the lock.
func (in *Injector) SlowFactor(node msg.Loc) float64 {
	f := 1.0
	if len(in.plan.SlowDisks) == 0 {
		return f
	}
	now := in.clock()
	for _, s := range in.plan.SlowDisks {
		if s.Node == node && s.active(now) {
			f *= s.Factor
		}
	}
	return f
}

// NoteCrash records a crash or restart applied by the binding layer
// (DES node crashes, nemesis down windows).
func (in *Injector) NoteCrash(node msg.Loc, kind string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.record(Injection{At: in.clock(), Kind: kind, Dst: node, Rule: -1})
}

// record appends to the injection log and mirrors into obs. Callers
// hold in.mu.
func (in *Injector) record(i Injection) {
	in.log = append(in.log, i)
	switch i.Kind {
	case "drop":
		in.cDrops.Inc()
	case "delay":
		in.cDelays.Inc()
	case "dup":
		in.cDups.Inc()
	case "block":
		in.cBlocks.Inc()
	default:
		// Rare node-level events (kill/restart/down/up/corrupt-tail) are
		// exactly the landmarks a postmortem reader orients around; the
		// per-message kinds above stay out of the log ring (they're in the
		// trace ring with full coordinates already).
		lg.WithNode(i.Dst).Infof("injected %s", i.Kind)
	}
	if in.o.Tracing() {
		e := obs.Ev(i.Dst, obs.LayerFault, "fault."+i.Kind)
		e.Hdr = i.Hdr
		if i.Src != "" {
			e.Note = fmt.Sprintf("%s->%s rule=%d", i.Src, i.Dst, i.Rule)
		}
		in.o.Record(e)
	}
}

// Injections snapshots the injection log.
func (in *Injector) Injections() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Injection(nil), in.log...)
}

// Fingerprint hashes the injection log — two runs of the same plan,
// seed, and message sequence produce equal fingerprints, which is the
// reproducibility acceptance check of the chaos experiment.
func (in *Injector) Fingerprint() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	h := mix(in.plan.Seed)
	for _, i := range in.log {
		h = mix(h ^ uint64(i.At) ^ strHash(i.Kind) ^ strHash(string(i.Src)) ^
			mix(strHash(string(i.Dst))) ^ strHash(i.Hdr) ^ uint64(i.Delay) ^ uint64(i.Dup))
	}
	return h
}

// StartNemesis applies the plan's Crash entries on the injector's own
// clock: at each Crash.At the node goes down (Blocked cuts its
// traffic), and comes back after RestartAfter. This is the wall-clock
// nemesis for real transports; under DES, BindCluster schedules real
// node crashes on the simulator instead. The returned stop function
// cancels pending transitions.
func StartNemesis(in *Injector) (stop func()) {
	var mu sync.Mutex
	var timers []*time.Timer
	now := in.clock()
	add := func(at time.Duration, fn func()) {
		d := at - now
		if d < 0 {
			d = 0
		}
		mu.Lock()
		timers = append(timers, time.AfterFunc(d, fn))
		mu.Unlock()
	}
	for _, c := range in.plan.EffectiveCrashes() {
		c := c
		add(c.At.D(), func() { in.SetDown(c.Node, true) })
		if c.RestartAfter > 0 {
			add(c.At.D()+c.RestartAfter.D(), func() { in.SetDown(c.Node, false) })
		}
	}
	return func() {
		mu.Lock()
		defer mu.Unlock()
		for _, t := range timers {
			t.Stop()
		}
	}
}

// ------------------------------------------------------------- hashing --

// mix is the splitmix64 finalizer: a fast, well-distributed 64-bit
// permutation used to derive independent per-decision hashes.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// strHash is FNV-1a.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
