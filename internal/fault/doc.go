// Package fault is the deterministic fault-injection (nemesis) layer.
// A Plan is a seedable script of message-level faults (drop, delay,
// duplicate — and through delay, reorder), network partitions, and node
// crash-restarts, applied over timed windows. One Plan drives all three
// execution substrates the same way:
//
//   - the discrete-event simulator, through Cluster.Fault (BindCluster),
//     where virtual time makes the whole injection schedule reproducible
//     bit-for-bit;
//   - the real transports, through the FaultyTransport decorator (Wrap)
//     over network.Hub or network.TCP;
//   - the verify fuzzer, whose schedule encoding gains drop/duplicate
//     choices (Model.Drops / Model.Dups).
//
// # Invariants
//
//   - Determinism: every probabilistic decision is a pure hash of
//     (plan seed, rule index, src, dst, header, occurrence number) — no
//     shared PRNG stream — so the decision for the n-th matching message
//     on an edge is independent of interleaving with other edges. Under
//     the simulator, where message order is itself deterministic, the
//     full injection log (see Injector.Fingerprint) reproduces exactly
//     across runs of the same plan and seed.
//   - Attributability: every injection is recorded as an obs trace
//     event (layer "fault"), so a checker violation under chaos is
//     attributable to the faults that preceded it.
//   - Faults only remove, delay, or repeat messages — they never forge
//     or mutate payloads, so any safety violation observed under a plan
//     is the protocol's fault, not the nemesis's.
//
// The batched, pipelined broadcast hot path is covered explicitly:
// batch_test.go drives partition-mid-batch and
// crash-between-propose-and-decide schedules against the sequencer's
// cut policy on the simulator. Because the service has no
// retransmission layer, plans against it must keep the sequencer
// connected to a quorum — a lost proposal stalls its instance rather
// than violating safety.
//
// # Concurrency
//
// An Injector is safe for concurrent use: fault decisions are pure
// functions of the message coordinates, and the occurrence counters and
// injection log behind Fingerprint are guarded by one mutex.
// FaultyTransport is as concurrent as the transport it wraps — Send may
// be called from any goroutine; delayed redeliveries are re-timed onto
// the receiver's channel by an internal pump goroutine that Close tears
// down. Plans themselves are immutable once loaded.
package fault
