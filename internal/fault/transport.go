package fault

import (
	"sync"
	"time"

	"shadowdb/internal/msg"
	"shadowdb/internal/network"
)

// FaultyTransport decorates a real transport (network.Hub registration
// or network.TCP) with an injector. Outbound messages are judged once,
// sender-side: drops vanish, delays are re-sent later from a timer,
// duplicates are sent again. Inbound messages pass only the
// deterministic Blocked filter (partitions, down nodes) — probabilistic
// rules never run receiver-side, so a hub whose every registration is
// wrapped over one shared injector still judges each message exactly
// once.
type FaultyTransport struct {
	inner network.Transport
	self  msg.Loc
	inj   *Injector

	out  chan msg.Envelope
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	mu     sync.Mutex
	timers map[*time.Timer]struct{}
}

var _ network.Transport = (*FaultyTransport)(nil)

// Wrap decorates inner with the injector's faults. self names the
// wrapped endpoint (the src of outbound, dst of inbound judgments).
func Wrap(inner network.Transport, self msg.Loc, inj *Injector) *FaultyTransport {
	t := &FaultyTransport{
		inner:  inner,
		self:   self,
		inj:    inj,
		out:    make(chan msg.Envelope, 1024),
		done:   make(chan struct{}),
		timers: make(map[*time.Timer]struct{}),
	}
	t.wg.Add(1)
	go t.pump()
	return t
}

// Send implements network.Transport.
func (t *FaultyTransport) Send(env msg.Envelope) error {
	select {
	case <-t.done:
		return network.ErrClosed
	default:
	}
	if env.From == "" {
		env.From = t.self
	}
	if t.inj.Blocked(t.self, env.To) {
		t.inj.NoteBlocked(t.self, env.To, env.M.Hdr)
		return nil // partitioned: dropped, as on a cut cable
	}
	v := t.inj.Judge(t.self, env.To, env.M.Hdr)
	if v.Drop {
		return nil
	}
	copies := 1 + v.Dup
	if v.Delay <= 0 {
		var err error
		for i := 0; i < copies; i++ {
			err = t.inner.Send(env)
		}
		return err
	}
	t.mu.Lock()
	var tm *time.Timer
	tm = time.AfterFunc(v.Delay, func() {
		t.mu.Lock()
		delete(t.timers, tm)
		t.mu.Unlock()
		select {
		case <-t.done:
			return
		default:
		}
		for i := 0; i < copies; i++ {
			_ = t.inner.Send(env)
		}
	})
	t.timers[tm] = struct{}{}
	t.mu.Unlock()
	return nil
}

// Receive implements network.Transport.
func (t *FaultyTransport) Receive() <-chan msg.Envelope { return t.out }

// pump forwards inbound envelopes, discarding traffic from partitioned
// or down peers (the receive side of an asymmetric cut).
func (t *FaultyTransport) pump() {
	defer t.wg.Done()
	defer close(t.out)
	for env := range t.inner.Receive() {
		if env.From != "" && env.From != t.self && t.inj.Blocked(env.From, t.self) {
			t.inj.NoteBlocked(env.From, t.self, env.M.Hdr)
			continue
		}
		select {
		case t.out <- env:
		case <-t.done:
			return
		}
	}
}

// Close implements network.Transport: it stops pending delayed sends,
// closes the inner transport, and drains the pump.
func (t *FaultyTransport) Close() error {
	var err error
	t.once.Do(func() {
		close(t.done)
		t.mu.Lock()
		for tm := range t.timers {
			tm.Stop()
		}
		t.timers = map[*time.Timer]struct{}{}
		t.mu.Unlock()
		err = t.inner.Close()
		t.wg.Wait()
	})
	return err
}
