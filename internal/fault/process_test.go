package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shadowdb/internal/des"
	"shadowdb/internal/msg"
	"shadowdb/internal/store"
)

func writePlan(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	path := writePlan(t, `{"seed": 1, "rules": [{"match": {}, "dorp": true}]}`)
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "dorp") {
		t.Fatalf("misspelled field accepted: %v", err)
	}
	path = writePlan(t, `{"seed": 1} trailing`)
	if _, err := Load(path); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestValidatePositionalErrors(t *testing.T) {
	cases := []struct {
		plan Plan
		want string
	}{
		{Plan{Rules: []Rule{{Drop: true}, {Prob: 2, Drop: true}}}, "rule 1"},
		{Plan{Rules: []Rule{{Drop: true, From: Duration(-1)}}}, "rule 0"},
		{Plan{Rules: []Rule{{Drop: true, Match: Match{Hdr: "bc deliver"}}}}, "rule 0: hdr"},
		{Plan{Rules: []Rule{{Drop: true, Match: Match{Src: "a|b"}}}}, "rule 0: src"},
		{Plan{Partitions: []Partition{{A: []msg.Loc{"a"}, B: nil}}}, "partition 0"},
		{Plan{Crashes: []Crash{{At: Duration(time.Second), Node: "n1"}, {At: Duration(-1), Node: "n2"}}}, "crash 1"},
		{Plan{Crashes: []Crash{{At: 0, Node: "n1", CorruptTail: true}}}, "crash 0"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate() = %v, want mention of %q", err, c.want)
		}
	}
	good := Plan{
		Rules:      []Rule{{Match: Match{Src: "r1", Hdr: "bc.deliver"}, Drop: true, Prob: 0.5}},
		Partitions: []Partition{{A: []msg.Loc{"a"}, B: []msg.Loc{"b"}}},
		Crashes:    []Crash{{At: Duration(time.Second), Node: "r1", RestartAfter: Duration(time.Second), CorruptTail: true}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("well-formed plan rejected: %v", err)
	}
}

// CorruptWALTail must break exactly the newest segment's last record:
// the store reopens cleanly and replays everything but the mangled
// tail.
func TestCorruptWALTail(t *testing.T) {
	root := t.TempDir()
	prov, err := store.NewDir(root, store.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	st, err := prov.Open("acc-a1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append([]byte{byte(i), 0xAA, 0xBB}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Node-root form: finds the wal under the component subdirectory.
	if err := CorruptWALTail(root); err != nil {
		t.Fatal(err)
	}

	prov2, err := store.NewDir(root, store.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := prov2.Open("acc-a1")
	if err != nil {
		t.Fatalf("corrupt tail prevented reopen: %v", err)
	}
	var got []byte
	if err := st2.Replay(func(rec []byte) error {
		got = append(got, rec[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d records after tail corruption, want 4 (last truncated)", len(got))
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("surviving record %d has payload %d", i, b)
		}
	}
}

// BindProcess: a killed node is rebuilt from its durable store by the
// host's Restart hook — a genuinely fresh incarnation — and resumes
// with its journaled state.
func TestBindProcessKillRestart(t *testing.T) {
	root := t.TempDir()
	sim := &des.Sim{}
	clu := des.NewCluster(sim)

	openStore := func() store.Stable {
		prov, err := store.NewDir(root, store.SyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		st, err := prov.Open("counter")
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// The process journals every tick; its in-memory count is its state.
	mkHandler := func(st store.Stable) (des.Handler, *int) {
		count := 0
		if err := st.Replay(func([]byte) error { count++; return nil }); err != nil {
			t.Fatal(err)
		}
		h := func(env des.Envelope) []msg.Directive {
			if err := st.Append([]byte{1}); err != nil {
				t.Error(err)
			}
			count++
			return nil
		}
		return h, &count
	}
	st := openStore()
	h, count := mkHandler(st)
	n := clu.AddNode("svc", 1, nil, h)

	killed, restarted := false, false
	BindProcess(clu, Plan{Crashes: []Crash{
		{At: Duration(100 * time.Millisecond), Node: "svc", RestartAfter: Duration(50 * time.Millisecond)},
	}}, ProcessHooks{
		Kill: func(node msg.Loc) {
			killed = true
			st.Close()
		},
		Restart: func(node msg.Loc) {
			restarted = true
			st = openStore()
			var h2 des.Handler
			h2, count = mkHandler(st)
			n.Rebind(h2)
		},
		DataDir: func(node msg.Loc) string { return root },
	})

	for _, at := range []time.Duration{10, 20, 30, 200, 210} {
		at := at * time.Millisecond
		sim.At(at, func() { clu.Send("external", "svc", msg.M("tick", nil)) })
	}
	sim.Run(time.Second, 1_000_000)
	if !killed || !restarted {
		t.Fatalf("hooks not run: killed=%v restarted=%v", killed, restarted)
	}
	// 3 pre-crash ticks recovered from the journal + 2 post-restart.
	if *count != 5 {
		t.Fatalf("recovered count = %d, want 5 (3 journaled + 2 live)", *count)
	}
}
