package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"shadowdb/internal/msg"
)

// Duration is a time.Duration that unmarshals from JSON either as a
// number of nanoseconds or as a Go duration string ("150ms", "3s").
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a nanosecond number or a duration string.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("fault: bad duration %q: %w", x, err)
		}
		*d = Duration(parsed)
		return nil
	default:
		return fmt.Errorf("fault: bad duration %v", v)
	}
}

// Match selects messages by source, destination, and header. Empty
// fields match anything, so the zero Match matches every message.
type Match struct {
	// Src/Dst restrict the edge ("" = any).
	Src msg.Loc `json:"src,omitempty"`
	Dst msg.Loc `json:"dst,omitempty"`
	// Hdr restricts the message header ("" = any).
	Hdr string `json:"hdr,omitempty"`
}

// Hits reports whether the match selects (src, dst, hdr).
func (m Match) Hits(src, dst msg.Loc, hdr string) bool {
	return (m.Src == "" || m.Src == src) &&
		(m.Dst == "" || m.Dst == dst) &&
		(m.Hdr == "" || m.Hdr == hdr)
}

// Rule is one probabilistic message fault, active inside [From, To).
// A matched message is judged once, sender-side: with probability Prob
// it is dropped (Drop), delayed by Delay plus a deterministic jitter in
// [0, Jitter) (delay on a FIFO link reorders), and duplicated Dup extra
// times. Drop wins over delay/duplicate within one rule.
type Rule struct {
	Match Match `json:"match"`
	// From/To bound the fault window on the run clock (To 0 = forever).
	From Duration `json:"from,omitempty"`
	To   Duration `json:"to,omitempty"`
	// Prob is the per-message firing probability in [0,1]; 0 means 1
	// (always fire — a deterministic rule).
	Prob float64 `json:"prob,omitempty"`
	// Drop discards the message.
	Drop bool `json:"drop,omitempty"`
	// Delay postpones delivery; Jitter adds a per-message deterministic
	// extra in [0, Jitter).
	Delay  Duration `json:"delay,omitempty"`
	Jitter Duration `json:"jitter,omitempty"`
	// Dup re-sends the message this many extra times.
	Dup int `json:"dup,omitempty"`
	// MaxHits bounds how many messages the rule may fire on (0 =
	// unbounded).
	MaxHits int `json:"max_hits,omitempty"`
}

func (r Rule) active(now time.Duration) bool {
	if now < r.From.D() {
		return false
	}
	return r.To == 0 || now < r.To.D()
}

// Partition blocks traffic between the node sets A and B inside
// [From, To). Symmetric blocks both directions; otherwise only A→B is
// blocked (an asymmetric partition: B still reaches A).
type Partition struct {
	From Duration  `json:"from,omitempty"`
	To   Duration  `json:"to,omitempty"` // 0 = never heals
	A    []msg.Loc `json:"a"`
	B    []msg.Loc `json:"b"`
	// Symmetric blocks B→A too.
	Symmetric bool `json:"symmetric,omitempty"`
}

func (p Partition) active(now time.Duration) bool {
	if now < p.From.D() {
		return false
	}
	return p.To == 0 || now < p.To.D()
}

// blocks reports whether the partition blocks src→dst while active.
func (p Partition) blocks(src, dst msg.Loc) bool {
	if contains(p.A, src) && contains(p.B, dst) {
		return true
	}
	return p.Symmetric && contains(p.B, src) && contains(p.A, dst)
}

func contains(ls []msg.Loc, l msg.Loc) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// Isolate builds the partition that cuts island off from every other
// location in all, both directions, inside [from, to) — the shard-level
// fault of the sharded deployment: one shard's broadcast nodes and
// replicas keep talking to each other while the router, the clients,
// and every other shard cannot reach them (nor they anyone else).
func Isolate(from, to Duration, island []msg.Loc, all []msg.Loc) Partition {
	rest := make([]msg.Loc, 0, len(all))
	for _, l := range all {
		if !contains(island, l) {
			rest = append(rest, l)
		}
	}
	return Partition{From: from, To: to, A: island, B: rest, Symmetric: true}
}

// Crash schedules a node failure at At. RestartAfter 0 means the node
// stays down; otherwise it restarts that long after the crash,
// retaining its state unless LoseState is set.
type Crash struct {
	At   Duration `json:"at"`
	Node msg.Loc  `json:"node"`
	// RestartAfter is the downtime (0 = crash-stop, no restart).
	RestartAfter Duration `json:"restart_after,omitempty"`
	// LoseState restarts the node from its initial state (process reset)
	// instead of resuming with retained state.
	LoseState bool `json:"lose_state,omitempty"`
	// CorruptTail flips bytes in the last record of the node's newest WAL
	// segment before the restart — the torn-write / dying-disk failure
	// mode. Only meaningful under a process nemesis with a data directory
	// (BindProcess); ignored for in-simulator state retention.
	CorruptTail bool `json:"corrupt_tail,omitempty"`
}

// Rolling is a first-class rolling-restart scenario: starting at
// StartAt, the named nodes are killed one after another, Stagger apart,
// each restarting after Downtime with its durable state retained. It is
// sugar over Crash — EffectiveCrashes expands it deterministically — so
// every binding (BindCluster, BindProcess, StartNemesis) and the
// injection fingerprint treat a rolling restart exactly like the
// equivalent hand-written crash schedule.
type Rolling struct {
	// StartAt is when the first node is killed.
	StartAt Duration `json:"start_at"`
	// Nodes are killed in list order.
	Nodes []msg.Loc `json:"nodes"`
	// Downtime is each node's time down before its restart.
	Downtime Duration `json:"downtime"`
	// Stagger separates consecutive kills. Stagger >= Downtime keeps at
	// most one node down at a time (the classic rolling restart);
	// smaller values overlap the windows deliberately.
	Stagger Duration `json:"stagger"`
	// CorruptTail flips the WAL tail of every restarted node (see
	// Crash.CorruptTail).
	CorruptTail bool `json:"corrupt_tail,omitempty"`
}

// Crashes expands the scenario into its Crash entries.
func (r Rolling) Crashes() []Crash {
	out := make([]Crash, 0, len(r.Nodes))
	for i, n := range r.Nodes {
		out = append(out, Crash{
			At:           r.StartAt + Duration(int64(i))*r.Stagger,
			Node:         n,
			RestartAfter: r.Downtime,
			CorruptTail:  r.CorruptTail,
		})
	}
	return out
}

// SlowDisk degrades one node's execution inside [At, Until): every
// costed handler step on the node reports Factor times its normal
// cost. It models a dying or contended disk — the node stays up,
// answers messages, and votes, but falls behind — the gray failure
// that overload control must degrade through gracefully (a crash
// removes load; a slow node keeps accepting it).
type SlowDisk struct {
	At    Duration `json:"at"`
	Until Duration `json:"until"` // 0 = never heals
	Node  msg.Loc  `json:"node"`
	// Factor multiplies the node's execution cost (>= 1).
	Factor float64 `json:"factor"`
}

func (s SlowDisk) active(now time.Duration) bool {
	if now < s.At.D() {
		return false
	}
	return s.Until == 0 || now < s.Until.D()
}

// Plan is a complete fault script.
type Plan struct {
	// Seed drives every probabilistic decision. Same plan + same seed =
	// same decisions for the same message sequence.
	Seed uint64 `json:"seed"`
	// Rules are the probabilistic message faults.
	Rules []Rule `json:"rules,omitempty"`
	// Partitions are the timed link cuts.
	Partitions []Partition `json:"partitions,omitempty"`
	// Crashes are the node crash-restart events.
	Crashes []Crash `json:"crashes,omitempty"`
	// Rolling are rolling-restart scenarios, expanded into crashes by
	// EffectiveCrashes.
	Rolling []Rolling `json:"rolling,omitempty"`
	// SlowDisks are timed execution-cost degradations (gray failures).
	SlowDisks []SlowDisk `json:"slow_disks,omitempty"`
}

// EffectiveCrashes returns the plan's explicit crashes followed by the
// expansion of every rolling scenario, in declaration order. All crash
// consumers (BindCluster, BindProcess, StartNemesis) schedule from this
// list, so a Rolling behaves bit-identically to its expansion.
func (p Plan) EffectiveCrashes() []Crash {
	if len(p.Rolling) == 0 {
		return p.Crashes
	}
	out := append([]Crash(nil), p.Crashes...)
	for _, r := range p.Rolling {
		out = append(out, r.Crashes()...)
	}
	return out
}

// Validate rejects nonsensical plans (negative windows, probabilities
// outside [0,1], malformed location or header references, crashes
// without a node). Every error names the offending entry by position.
func (p Plan) Validate() error {
	for i, r := range p.Rules {
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("fault: rule %d: prob %v outside [0,1]", i, r.Prob)
		}
		if r.From < 0 || r.To < 0 {
			return fmt.Errorf("fault: rule %d: negative window bound", i)
		}
		if r.To != 0 && r.To < r.From {
			return fmt.Errorf("fault: rule %d: window ends before it starts", i)
		}
		if !r.Drop && r.Delay == 0 && r.Jitter == 0 && r.Dup == 0 {
			return fmt.Errorf("fault: rule %d: no effect (set drop, delay, or dup)", i)
		}
		if r.Delay < 0 || r.Jitter < 0 {
			return fmt.Errorf("fault: rule %d: negative delay or jitter", i)
		}
		if r.Dup < 0 {
			return fmt.Errorf("fault: rule %d: negative dup", i)
		}
		if r.MaxHits < 0 {
			return fmt.Errorf("fault: rule %d: negative max_hits", i)
		}
		if err := wellFormedRef(string(r.Match.Src)); err != nil {
			return fmt.Errorf("fault: rule %d: src: %w", i, err)
		}
		if err := wellFormedRef(string(r.Match.Dst)); err != nil {
			return fmt.Errorf("fault: rule %d: dst: %w", i, err)
		}
		if err := wellFormedRef(r.Match.Hdr); err != nil {
			return fmt.Errorf("fault: rule %d: hdr: %w", i, err)
		}
	}
	for i, pt := range p.Partitions {
		if pt.From < 0 || pt.To < 0 {
			return fmt.Errorf("fault: partition %d: negative window bound", i)
		}
		if pt.To != 0 && pt.To < pt.From {
			return fmt.Errorf("fault: partition %d: window ends before it starts", i)
		}
		if len(pt.A) == 0 || len(pt.B) == 0 {
			return fmt.Errorf("fault: partition %d: empty side", i)
		}
		for _, l := range append(append([]msg.Loc(nil), pt.A...), pt.B...) {
			if err := wellFormedRef(string(l)); err != nil || l == "" {
				return fmt.Errorf("fault: partition %d: bad location %q", i, l)
			}
		}
	}
	for i, c := range p.Crashes {
		if c.Node == "" {
			return fmt.Errorf("fault: crash %d: missing node", i)
		}
		if err := wellFormedRef(string(c.Node)); err != nil {
			return fmt.Errorf("fault: crash %d: node: %w", i, err)
		}
		if c.At < 0 {
			return fmt.Errorf("fault: crash %d: negative crash time", i)
		}
		if c.RestartAfter < 0 {
			return fmt.Errorf("fault: crash %d: negative restart_after", i)
		}
		if c.CorruptTail && c.RestartAfter == 0 {
			return fmt.Errorf("fault: crash %d: corrupt_tail without a restart has no observable effect", i)
		}
	}
	for i, r := range p.Rolling {
		if len(r.Nodes) == 0 {
			return fmt.Errorf("fault: rolling %d: no nodes", i)
		}
		for _, n := range r.Nodes {
			if n == "" {
				return fmt.Errorf("fault: rolling %d: empty node", i)
			}
			if err := wellFormedRef(string(n)); err != nil {
				return fmt.Errorf("fault: rolling %d: node: %w", i, err)
			}
		}
		if r.StartAt < 0 {
			return fmt.Errorf("fault: rolling %d: negative start_at", i)
		}
		if r.Downtime <= 0 {
			return fmt.Errorf("fault: rolling %d: downtime must be positive (a rolling restart restarts)", i)
		}
		if r.Stagger < 0 {
			return fmt.Errorf("fault: rolling %d: negative stagger", i)
		}
		if len(r.Nodes) > 1 && r.Stagger == 0 {
			return fmt.Errorf("fault: rolling %d: zero stagger with %d nodes is a mass restart, not a rolling one", i, len(r.Nodes))
		}
	}
	for i, s := range p.SlowDisks {
		if s.Node == "" {
			return fmt.Errorf("fault: slow_disk %d: missing node", i)
		}
		if err := wellFormedRef(string(s.Node)); err != nil {
			return fmt.Errorf("fault: slow_disk %d: node: %w", i, err)
		}
		if s.At < 0 || s.Until < 0 {
			return fmt.Errorf("fault: slow_disk %d: negative window bound", i)
		}
		if s.Until != 0 && s.Until < s.At {
			return fmt.Errorf("fault: slow_disk %d: window ends before it starts", i)
		}
		if s.Factor < 1 {
			return fmt.Errorf("fault: slow_disk %d: factor %v below 1 (a slow disk slows)", i, s.Factor)
		}
	}
	return nil
}

// wellFormedRef rejects location/header references that can only be
// typos: whitespace, control characters, or the '|' the trace layer
// uses as a field separator. Empty is fine (it means "any").
func wellFormedRef(s string) error {
	for _, r := range s {
		if r <= ' ' || r == '|' || r == 0x7f {
			return fmt.Errorf("malformed reference %q", s)
		}
	}
	return nil
}

// Load reads a JSON plan from a file and validates it. Unknown fields
// are rejected (a misspelled knob must not silently deactivate a
// fault), with the input offset of the failure in the error.
func Load(path string) (Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: parse %s (at byte %d): %w", path, dec.InputOffset(), err)
	}
	// Trailing garbage after the plan object is a malformed file too.
	if dec.More() {
		return Plan{}, fmt.Errorf("fault: parse %s: trailing data after plan (at byte %d)", path, dec.InputOffset())
	}
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("fault: %s: %w", path, err)
	}
	return p, nil
}
