package fault

import (
	"fmt"
	"testing"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/des"
	"shadowdb/internal/msg"
)

// The batched, pipelined broadcast service under faults (DESIGN.md §8):
// a symmetric partition isolates a non-sequencer node while batches are
// in flight, and an acceptor crash-restarts in the window between a
// propose and its decide. The service has no retransmission layer, so
// the nemesis must leave the sequencer connected to a quorum — the
// partition cuts b3 (quorum b1+b2 survives) and the crash takes b2
// (quorum b1+b3 survives), never overlapping. Clients submit directly
// to the sequencer b1 so no forwarded submission rides a faulted link.

const (
	batchClients = 8
	batchMsgs    = 10
)

// batchFaultCluster wires the 3-node batched service plus two
// subscribers on the simulator, binds the fault plan, and schedules the
// client load spread over [0, 400ms).
func batchFaultCluster(t *testing.T, plan Plan) (*des.Sim, map[msg.Loc]map[int][]broadcast.Bcast) {
	t.Helper()
	sim := &des.Sim{}
	clu := des.NewCluster(sim)

	nodes := []msg.Loc{"b1", "b2", "b3"}
	subs := []msg.Loc{"sub1", "sub2"}
	cfg := broadcast.Config{
		Nodes: nodes, Subscribers: subs,
		MaxBatch: 4, MaxDelay: time.Millisecond, Pipeline: 2,
	}
	gen := broadcast.Spec(cfg).Generator()
	for _, b := range nodes {
		proc := gen(b)
		clu.AddNode(b, 1, nil, func(env des.Envelope) []msg.Directive {
			next, outs := proc.Step(env.M)
			proc = next
			return outs
		})
	}

	// Per-subscriber slot log: slot -> batch, with duplicate
	// notifications from other service nodes checked for agreement.
	got := make(map[msg.Loc]map[int][]broadcast.Bcast)
	for _, sub := range subs {
		sub := sub
		got[sub] = make(map[int][]broadcast.Bcast)
		clu.AddNode(sub, 1, nil, func(env des.Envelope) []msg.Directive {
			d, ok := env.M.Body.(broadcast.Deliver)
			if !ok {
				return nil
			}
			if prev, dup := got[sub][d.Slot]; dup {
				if !sameMsgs(prev, d.Msgs) {
					t.Errorf("%s: slot %d re-notified with a different batch", sub, d.Slot)
				}
				return nil
			}
			got[sub][d.Slot] = d.Msgs
			return nil
		})
	}

	BindCluster(clu, plan)

	// Each round is a simultaneous 8-client burst so the sequencer's cut
	// policy actually forms multi-message batches (consensus on the
	// costless simulator completes instantly, so staggered arrivals
	// would decide one by one).
	for c := 0; c < batchClients; c++ {
		from := msg.Loc(fmt.Sprintf("client%d", c))
		for i := 0; i < batchMsgs; i++ {
			at := time.Duration(i) * 40 * time.Millisecond
			from, seq := from, int64(i+1)
			sim.At(at, func() {
				clu.Send("external", "b1", msg.M(broadcast.HdrBcast, broadcast.Bcast{
					From: from, Seq: seq, Payload: []byte("p"),
				}))
			})
		}
	}
	return sim, got
}

func sameMsgs(a, b []broadcast.Bcast) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].Seq != b[i].Seq {
			return false
		}
	}
	return true
}

// checkBatchedDelivery asserts total order, gap freedom, exactly-once
// delivery of the full load, the cut bound, and that batching actually
// happened.
func checkBatchedDelivery(t *testing.T, got map[msg.Loc]map[int][]broadcast.Bcast) {
	t.Helper()
	var ref map[int][]broadcast.Bcast
	for sub, bySlot := range got {
		high := -1
		for s := range bySlot {
			if s > high {
				high = s
			}
		}
		count := make(map[string]int)
		for s := 0; s <= high; s++ {
			batch, ok := bySlot[s]
			if !ok {
				t.Fatalf("%s: gap at slot %d", sub, s)
			}
			if len(batch) > 4 {
				t.Errorf("%s: slot %d carries %d messages, cut bound 4", sub, s, len(batch))
			}
			for _, b := range batch {
				count[fmt.Sprintf("%s/%d", b.From, b.Seq)]++
			}
		}
		for c := 0; c < batchClients; c++ {
			for i := 1; i <= batchMsgs; i++ {
				k := fmt.Sprintf("client%d/%d", c, i)
				if count[k] != 1 {
					t.Errorf("%s: message %s delivered %d times, want 1", sub, k, count[k])
				}
			}
		}
		if len(bySlot) >= batchClients*batchMsgs {
			t.Errorf("%s: %d slots for %d messages; batching had no effect", sub, len(bySlot), batchClients*batchMsgs)
		}
		if ref == nil {
			ref = bySlot
			continue
		}
		for s, batch := range bySlot {
			if rb, ok := ref[s]; ok && !sameMsgs(rb, batch) {
				t.Errorf("subscribers disagree at slot %d", s)
			}
		}
	}
}

func TestBatchedBroadcastSurvivesPartitionMidBatch(t *testing.T) {
	// b3 is cut symmetrically during [50ms, 150ms) while batches are in
	// flight; the sequencer keeps a quorum with b2 throughout.
	plan := Plan{Partitions: []Partition{{
		From: Duration(50 * time.Millisecond), To: Duration(150 * time.Millisecond),
		A: []msg.Loc{"b3"}, B: []msg.Loc{"b1", "b2"}, Symmetric: true,
	}}}
	sim, got := batchFaultCluster(t, plan)
	sim.Run(3*time.Second, 10_000_000)
	checkBatchedDelivery(t, got)
}

func TestBatchedBroadcastSurvivesAcceptorCrashRestart(t *testing.T) {
	// b2 crashes at 200ms — with the pipeline full, between some batch's
	// propose and its decide — and restarts with state retained 50ms
	// later. Quorum b1+b3 decides the in-flight instances meanwhile.
	plan := Plan{Crashes: []Crash{{
		At: Duration(200 * time.Millisecond), Node: "b2",
		RestartAfter: Duration(50 * time.Millisecond),
	}}}
	sim, got := batchFaultCluster(t, plan)
	sim.Run(3*time.Second, 10_000_000)
	checkBatchedDelivery(t, got)
}

func TestBatchedBroadcastSurvivesBothFaults(t *testing.T) {
	// Both faults in one run, non-overlapping so a quorum always remains
	// reachable from the sequencer.
	plan := Plan{
		Partitions: []Partition{{
			From: Duration(50 * time.Millisecond), To: Duration(150 * time.Millisecond),
			A: []msg.Loc{"b3"}, B: []msg.Loc{"b1", "b2"}, Symmetric: true,
		}},
		Crashes: []Crash{{
			At: Duration(200 * time.Millisecond), Node: "b2",
			RestartAfter: Duration(50 * time.Millisecond),
		}},
	}
	sim, got := batchFaultCluster(t, plan)
	sim.Run(3*time.Second, 10_000_000)
	checkBatchedDelivery(t, got)
}
