package fault

import (
	"time"

	"shadowdb/internal/des"
	"shadowdb/internal/msg"
)

// BindCluster applies a plan to a simulated cluster: it installs the
// injector as the cluster's Fault hook (rules and partitions judged on
// the virtual clock) and schedules the plan's crash-restart events as
// real des.Node crashes on the simulator. Because the simulator is
// single-threaded and its clock virtual, the entire injection schedule
// is deterministic: same plan + seed + workload ⇒ identical
// Injector.Fingerprint.
//
// Call BindCluster after the plan's crash targets are registered on the
// cluster (unknown nodes are skipped at fire time).
func BindCluster(clu *des.Cluster, p Plan) *Injector {
	inj := NewInjector(p, func() time.Duration { return clu.Sim.Now() })
	clu.Fault = func(from, to msg.Loc, m msg.Msg) des.FaultVerdict {
		if inj.Blocked(from, to) {
			inj.NoteBlocked(from, to, m.Hdr)
			return des.FaultVerdict{Drop: true}
		}
		v := inj.Judge(from, to, m.Hdr)
		return des.FaultVerdict{Drop: v.Drop, Delay: v.Delay, Dup: v.Dup}
	}
	for _, c := range p.EffectiveCrashes() {
		c := c
		clu.Sim.At(c.At.D(), func() {
			n := clu.Node(c.Node)
			if n == nil {
				return
			}
			n.Crash()
			inj.NoteCrash(c.Node, "crash")
			if c.RestartAfter > 0 {
				clu.Sim.After(c.RestartAfter.D(), func() {
					n.Restart(c.LoseState)
					inj.NoteCrash(c.Node, "restart")
				})
			}
		})
	}
	// Slow-disk windows change nothing in the cluster itself — costed
	// handlers pull the factor through SlowFactor — but the edges are
	// recorded as injections so the log (and the fingerprint) carries
	// the gray-failure schedule.
	for _, s := range p.SlowDisks {
		s := s
		clu.Sim.At(s.At.D(), func() { inj.NoteCrash(s.Node, "slowdisk") })
		if s.Until > 0 {
			clu.Sim.At(s.Until.D(), func() { inj.NoteCrash(s.Node, "heal") })
		}
	}
	return inj
}
