package fault

import (
	"encoding/json"
	"testing"
	"time"

	"shadowdb/internal/msg"
	"shadowdb/internal/network"
)

// fixedClock returns a settable run clock.
func fixedClock() (func() time.Duration, *time.Duration) {
	var now time.Duration
	return func() time.Duration { return now }, &now
}

func TestJudgeDeterministic(t *testing.T) {
	plan := Plan{
		Seed: 42,
		Rules: []Rule{
			{Match: Match{Hdr: "x"}, Prob: 0.5, Drop: true},
			{Match: Match{Src: "a"}, Prob: 0.3, Delay: Duration(time.Millisecond), Jitter: Duration(time.Millisecond)},
		},
	}
	run := func() []Verdict {
		clock, _ := fixedClock()
		in := NewInjector(plan, clock)
		var out []Verdict
		for i := 0; i < 200; i++ {
			out = append(out, in.Judge("a", "b", "x"))
			out = append(out, in.Judge("b", "a", "x"))
		}
		return out
	}
	v1, v2 := run(), run()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d differs across identical runs: %+v vs %+v", i, v1[i], v2[i])
		}
	}
	// The probabilistic rule must fire sometimes and not always.
	drops := 0
	for _, v := range v1 {
		if v.Drop {
			drops++
		}
	}
	if drops == 0 || drops == len(v1) {
		t.Fatalf("drop rule fired %d/%d times, want a strict subset", drops, len(v1))
	}
}

func TestJudgeIndependentOfInterleaving(t *testing.T) {
	// The n-th message on an edge gets the same verdict no matter what
	// other edges did in between.
	plan := Plan{Seed: 7, Rules: []Rule{{Match: Match{}, Prob: 0.5, Drop: true}}}
	clock, _ := fixedClock()
	solo := NewInjector(plan, clock)
	var want []Verdict
	for i := 0; i < 50; i++ {
		want = append(want, solo.Judge("a", "b", "m"))
	}
	mixed := NewInjector(plan, clock)
	var got []Verdict
	for i := 0; i < 50; i++ {
		mixed.Judge("c", "d", "m") // interleaved traffic on another edge
		got = append(got, mixed.Judge("a", "b", "m"))
		mixed.Judge("d", "c", "other")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("verdict %d for a->b depends on unrelated traffic", i)
		}
	}
}

func TestRuleWindowAndMaxHits(t *testing.T) {
	plan := Plan{Seed: 1, Rules: []Rule{{
		Match: Match{Hdr: "x"}, From: Duration(time.Second), To: Duration(2 * time.Second),
		Drop: true, MaxHits: 3,
	}}}
	clock, now := fixedClock()
	in := NewInjector(plan, clock)
	if v := in.Judge("a", "b", "x"); v.Drop {
		t.Fatal("rule fired before its window")
	}
	*now = 1500 * time.Millisecond
	hits := 0
	for i := 0; i < 10; i++ {
		if in.Judge("a", "b", "x").Drop {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("MaxHits=3 rule fired %d times", hits)
	}
	*now = 2500 * time.Millisecond
	if v := in.Judge("a", "b", "x"); v.Drop {
		t.Fatal("rule fired after its window")
	}
}

func TestPartitionsAndDown(t *testing.T) {
	plan := Plan{Partitions: []Partition{
		{From: 0, To: Duration(time.Second), A: []msg.Loc{"r1"}, B: []msg.Loc{"r2", "r3"}},
	}}
	clock, now := fixedClock()
	in := NewInjector(plan, clock)
	if !in.Blocked("r1", "r2") || !in.Blocked("r1", "r3") {
		t.Fatal("asymmetric partition must block A->B")
	}
	if in.Blocked("r2", "r1") {
		t.Fatal("asymmetric partition must not block B->A")
	}
	*now = 2 * time.Second
	if in.Blocked("r1", "r2") {
		t.Fatal("partition did not heal")
	}
	in.SetDown("r3", true)
	if !in.Blocked("r2", "r3") || !in.Blocked("r3", "r2") {
		t.Fatal("down node must be cut both ways")
	}
	in.SetDown("r3", false)
	if in.Blocked("r2", "r3") {
		t.Fatal("node came back up but stays blocked")
	}
}

func TestSymmetricPartition(t *testing.T) {
	plan := Plan{Partitions: []Partition{
		{A: []msg.Loc{"a"}, B: []msg.Loc{"b"}, Symmetric: true},
	}}
	clock, _ := fixedClock()
	in := NewInjector(plan, clock)
	if !in.Blocked("a", "b") || !in.Blocked("b", "a") {
		t.Fatal("symmetric partition must block both directions")
	}
}

func TestFingerprintReproducible(t *testing.T) {
	run := func(seed uint64) uint64 {
		clock, _ := fixedClock()
		in := NewInjector(Plan{Seed: seed, Rules: []Rule{{Match: Match{}, Prob: 0.4, Drop: true}}}, clock)
		for i := 0; i < 100; i++ {
			in.Judge("a", "b", "m")
		}
		return in.Fingerprint()
	}
	if run(99) != run(99) {
		t.Fatal("same plan+seed+messages must fingerprint identically")
	}
	if run(99) == run(100) {
		t.Fatal("different seeds should (overwhelmingly) fingerprint differently")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	src := `{
		"seed": 7,
		"rules": [{"match": {"hdr": "sdb.repl"}, "from": "1s", "to": "3s", "prob": 0.2, "drop": true}],
		"partitions": [{"from": "5s", "to": "8s", "a": ["r1"], "b": ["r2","r3"], "symmetric": true}],
		"crashes": [{"at": "10s", "node": "b2", "restart_after": 2000000000}]
	}`
	var p Plan
	if err := json.Unmarshal([]byte(src), &p); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].From.D() != time.Second || p.Rules[0].To.D() != 3*time.Second {
		t.Fatalf("string durations parsed wrong: %+v", p.Rules[0])
	}
	if p.Crashes[0].RestartAfter.D() != 2*time.Second {
		t.Fatalf("numeric duration parsed wrong: %+v", p.Crashes[0])
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var p2 Plan
	if err := json.Unmarshal(b, &p2); err != nil {
		t.Fatal(err)
	}
	if p2.Partitions[0].To.D() != 8*time.Second || !p2.Partitions[0].Symmetric {
		t.Fatalf("round trip lost fields: %+v", p2.Partitions[0])
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{Rules: []Rule{{Prob: 1.5, Drop: true}}},
		{Rules: []Rule{{Prob: 0.5}}}, // no effect
		{Rules: []Rule{{From: Duration(2 * time.Second), To: Duration(time.Second), Drop: true}}},
		{Partitions: []Partition{{A: []msg.Loc{"a"}}}},
		{Crashes: []Crash{{At: Duration(time.Second)}}},
		{Rolling: []Rolling{{Downtime: Duration(time.Second)}}},                                                          // no nodes
		{Rolling: []Rolling{{Nodes: []msg.Loc{"r1"}}}},                                                                   // no downtime
		{Rolling: []Rolling{{Nodes: []msg.Loc{"r1", "r2"}, Downtime: Duration(time.Second)}}},                            // zero stagger, many nodes
		{Rolling: []Rolling{{Nodes: []msg.Loc{"r1"}, Downtime: Duration(time.Second), StartAt: Duration(-time.Second)}}}, // negative start
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d should not validate", i)
		}
	}
}

func TestRollingExpansion(t *testing.T) {
	p := Plan{
		Crashes: []Crash{{At: Duration(time.Second), Node: "x", RestartAfter: Duration(time.Second)}},
		Rolling: []Rolling{{
			StartAt:  Duration(10 * time.Second),
			Nodes:    []msg.Loc{"r1", "r2", "r3"},
			Downtime: Duration(2 * time.Second),
			Stagger:  Duration(5 * time.Second),
		}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cs := p.EffectiveCrashes()
	if len(cs) != 4 {
		t.Fatalf("EffectiveCrashes = %d entries, want 4", len(cs))
	}
	if cs[0].Node != "x" {
		t.Errorf("explicit crash should come first, got %+v", cs[0])
	}
	for i, want := range []struct {
		node msg.Loc
		at   time.Duration
	}{{"r1", 10 * time.Second}, {"r2", 15 * time.Second}, {"r3", 20 * time.Second}} {
		c := cs[1+i]
		if c.Node != want.node || c.At.D() != want.at || c.RestartAfter.D() != 2*time.Second {
			t.Errorf("expanded crash %d = %+v, want node %s at %v downtime 2s", i, c, want.node, want.at)
		}
	}
	// The sugar-free plan with the same expansion validates identically.
	if err := (Plan{Crashes: cs}).Validate(); err != nil {
		t.Fatalf("expanded crashes do not validate: %v", err)
	}
	// JSON round trip keeps the scenario.
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var p2 Plan
	if err := json.Unmarshal(b, &p2); err != nil {
		t.Fatal(err)
	}
	if len(p2.Rolling) != 1 || len(p2.EffectiveCrashes()) != 4 {
		t.Fatalf("round trip lost the rolling scenario: %+v", p2)
	}
}

func TestWrapHubDropsAndPartitions(t *testing.T) {
	hub := network.NewHub()
	defer hub.Close()
	clock, now := fixedClock()
	in := NewInjector(Plan{
		Seed:       3,
		Rules:      []Rule{{Match: Match{Hdr: "lossy"}, Drop: true}},
		Partitions: []Partition{{From: Duration(time.Second), A: []msg.Loc{"a"}, B: []msg.Loc{"b"}}},
	}, clock)

	ta, err := hub.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := hub.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	fa := Wrap(ta, "a", in)
	fb := Wrap(tb, "b", in)
	defer fa.Close()
	defer fb.Close()

	recv := func(tr network.Transport, wait time.Duration) *msg.Envelope {
		select {
		case env := <-tr.Receive():
			return &env
		case <-time.After(wait):
			return nil
		}
	}

	// A deterministic drop rule eats matching headers...
	if err := fa.Send(msg.Envelope{To: "b", M: msg.M("lossy", nil)}); err != nil {
		t.Fatal(err)
	}
	if got := recv(fb, 50*time.Millisecond); got != nil {
		t.Fatalf("dropped message arrived: %v", got.M.Hdr)
	}
	// ...while others pass.
	if err := fa.Send(msg.Envelope{To: "b", M: msg.M("fine", nil)}); err != nil {
		t.Fatal(err)
	}
	if got := recv(fb, time.Second); got == nil || got.M.Hdr != "fine" {
		t.Fatalf("clean message lost: %v", got)
	}

	// Partition window: a->b cut, b->a open (asymmetric).
	*now = 1500 * time.Millisecond
	if err := fa.Send(msg.Envelope{To: "b", M: msg.M("fine", nil)}); err != nil {
		t.Fatal(err)
	}
	if got := recv(fb, 50*time.Millisecond); got != nil {
		t.Fatal("partitioned message arrived")
	}
	if err := fb.Send(msg.Envelope{To: "a", M: msg.M("fine", nil)}); err != nil {
		t.Fatal(err)
	}
	if got := recv(fa, time.Second); got == nil {
		t.Fatal("reverse direction of asymmetric partition must pass")
	}
	if n := len(in.Injections()); n == 0 {
		t.Fatal("injection log empty")
	}
}

func TestWrapDelayAndDuplicate(t *testing.T) {
	hub := network.NewHub()
	defer hub.Close()
	in := NewInjector(Plan{
		Seed: 5,
		Rules: []Rule{
			{Match: Match{Hdr: "dup"}, Dup: 1},
			{Match: Match{Hdr: "slow"}, Delay: Duration(20 * time.Millisecond)},
		},
	}, nil)
	ta, _ := hub.Register("a")
	tb, _ := hub.Register("b")
	fa := Wrap(ta, "a", in)
	fb := Wrap(tb, "b", in)
	defer fa.Close()
	defer fb.Close()

	if err := fa.Send(msg.Envelope{To: "b", M: msg.M("dup", nil)}); err != nil {
		t.Fatal(err)
	}
	got := 0
	timeout := time.After(time.Second)
	for got < 2 {
		select {
		case <-fb.Receive():
			got++
		case <-timeout:
			t.Fatalf("want 2 copies of duplicated message, got %d", got)
		}
	}

	start := time.Now()
	if err := fa.Send(msg.Envelope{To: "b", M: msg.M("slow", nil)}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-fb.Receive():
		if env.M.Hdr != "slow" {
			t.Fatalf("unexpected %s", env.M.Hdr)
		}
		if since := time.Since(start); since < 15*time.Millisecond {
			t.Fatalf("delayed message arrived after only %v", since)
		}
	case <-time.After(time.Second):
		t.Fatal("delayed message never arrived")
	}
}

func TestNemesisDownWindow(t *testing.T) {
	in := NewInjector(Plan{Crashes: []Crash{
		{At: 0, Node: "b2", RestartAfter: Duration(30 * time.Millisecond)},
	}}, nil)
	stop := StartNemesis(in)
	defer stop()
	deadline := time.Now().Add(time.Second)
	for !in.Blocked("a", "b2") {
		if time.Now().After(deadline) {
			t.Fatal("nemesis never took b2 down")
		}
		time.Sleep(time.Millisecond)
	}
	for in.Blocked("a", "b2") {
		if time.Now().After(deadline) {
			t.Fatal("nemesis never brought b2 back")
		}
		time.Sleep(time.Millisecond)
	}
}
