package fault

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"shadowdb/internal/des"
	"shadowdb/internal/msg"
)

// The process-level nemesis. BindCluster's crashes flip the simulated
// node's crash flag and optionally reset its in-memory process — the
// paper's crash-as-amnesia model. BindProcess goes further: a "kill"
// tears the node's process image down entirely, and a "restart" asks
// the host to rebuild it from its durable store, exactly like a real
// process being killed and re-exec'd over its data directory. Combined
// with Crash.CorruptTail it also exercises the torn-write path: the
// newest WAL segment's tail is flipped before the rebuild, and the
// store must open cleanly by truncating to the last valid record.

// ProcessHooks is what the host (a bench harness or daemon supervisor)
// supplies to make kill/restart real.
type ProcessHooks struct {
	// Kill tears the process down, beyond the simulator's crash flag:
	// close stores, drop references. May be nil (the crash flag and the
	// queue purge are often enough).
	Kill func(node msg.Loc)
	// Restart rebuilds the process from its durable state and rebinds it
	// to the node (des.Node.RebindCosted / Rebind inside). Required.
	Restart func(node msg.Loc)
	// DataDir maps a node to its store directory for CorruptTail, which
	// needs a real file to flip bytes in. May be nil when no crash in
	// the plan sets CorruptTail.
	DataDir func(node msg.Loc) string
	// Flight, when set, fires at the edges of a kill window — event
	// "kill" just before the Kill hook runs and "restart" after the new
	// incarnation is rebound — so a flight recorder can dump the node's
	// state around the injected fault. May be nil.
	Flight func(node msg.Loc, event string)
}

// BindProcess applies a plan to a simulated cluster with process-level
// kill/restart semantics. Message rules and partitions behave exactly
// as in BindCluster; crashes additionally run the host's hooks, so a
// restarted node is a NEW process incarnation recovered from stable
// storage rather than the old one with a flag cleared.
func BindProcess(clu *des.Cluster, p Plan, hooks ProcessHooks) *Injector {
	if hooks.Restart == nil {
		panic("fault: BindProcess requires a Restart hook")
	}
	// Message-level faults are identical to BindCluster; only the crash
	// schedule differs, so build the injector the same way but schedule
	// the crashes ourselves.
	inj := BindCluster(clu, Plan{Seed: p.Seed, Rules: p.Rules, Partitions: p.Partitions})
	for _, c := range p.EffectiveCrashes() {
		c := c
		clu.Sim.At(c.At.D(), func() {
			n := clu.Node(c.Node)
			if n == nil {
				return
			}
			n.Crash()
			if hooks.Flight != nil {
				hooks.Flight(c.Node, "kill")
			}
			if hooks.Kill != nil {
				hooks.Kill(c.Node)
			}
			inj.NoteCrash(c.Node, "kill")
			if c.RestartAfter <= 0 {
				return
			}
			clu.Sim.After(c.RestartAfter.D(), func() {
				if c.CorruptTail && hooks.DataDir != nil {
					if err := CorruptWALTail(hooks.DataDir(c.Node)); err == nil {
						inj.NoteCrash(c.Node, "corrupt-tail")
					}
				}
				// Rebuild first, then clear the crash flag: the fresh
				// incarnation must exist before messages flow again.
				hooks.Restart(c.Node)
				n.Restart(false)
				inj.NoteCrash(c.Node, "restart")
				if hooks.Flight != nil {
					hooks.Flight(c.Node, "restart")
				}
			})
		})
	}
	return inj
}

// CorruptWALTail flips the final bytes of the newest WAL segment under
// a store directory (as written by store.Dir), corrupting the last
// record's checksum — the torn-write / bit-rot failure the WAL's
// open-time truncation must absorb. dir may be either one component's
// store directory or a node root; in the latter case every WAL-bearing
// subdirectory's newest segment is hit.
func CorruptWALTail(dir string) error {
	segs, err := newestSegments(dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return fmt.Errorf("fault: no WAL segments under %s", dir)
	}
	for _, path := range segs {
		if err := flipTail(path); err != nil {
			return err
		}
	}
	return nil
}

// newestSegments finds the lexically newest wal-*.log directly in dir,
// or in each immediate subdirectory when dir itself holds none.
func newestSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	newest := ""
	var subdirs []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
			subdirs = append(subdirs, filepath.Join(dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if name > newest {
				newest = name
			}
		}
	}
	if newest != "" {
		return []string{filepath.Join(dir, newest)}, nil
	}
	var out []string
	for _, sub := range subdirs {
		if segs, err := newestSegments(sub); err == nil {
			out = append(out, segs...)
		}
	}
	return out, nil
}

// flipTail inverts up to the last 4 bytes of a file (enough to break
// any CRC32C), leaving empty files alone.
func flipTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	n := int64(4)
	if st.Size() < n {
		n = st.Size()
	}
	if n == 0 {
		return nil
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, st.Size()-n); err != nil {
		return err
	}
	for i := range buf {
		buf[i] ^= 0xff
	}
	_, err = f.WriteAt(buf, st.Size()-n)
	return err
}
