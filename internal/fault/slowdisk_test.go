package fault

import (
	"strings"
	"testing"
	"time"

	"shadowdb/internal/msg"
)

func TestSlowDiskValidate(t *testing.T) {
	cases := []struct {
		name string
		s    SlowDisk
		want string // "" = valid
	}{
		{"ok", SlowDisk{At: Duration(time.Second), Until: Duration(2 * time.Second), Node: "r1", Factor: 8}, ""},
		{"forever", SlowDisk{Node: "r1", Factor: 2}, ""},
		{"no node", SlowDisk{Factor: 2}, "missing node"},
		{"bad node", SlowDisk{Node: "r 1", Factor: 2}, "malformed"},
		{"backwards", SlowDisk{At: Duration(2 * time.Second), Until: Duration(time.Second), Node: "r1", Factor: 2}, "ends before"},
		{"speedup", SlowDisk{Node: "r1", Factor: 0.5}, "below 1"},
		{"zero factor", SlowDisk{Node: "r1"}, "below 1"},
	}
	for _, c := range cases {
		err := Plan{SlowDisks: []SlowDisk{c.s}}.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestSlowFactorWindowsAndStacking(t *testing.T) {
	plan := Plan{SlowDisks: []SlowDisk{
		{At: Duration(time.Second), Until: Duration(3 * time.Second), Node: "r1", Factor: 4},
		{At: Duration(2 * time.Second), Node: "r1", Factor: 2}, // never heals
		{At: 0, Until: Duration(10 * time.Second), Node: "r2", Factor: 16},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	clock, now := fixedClock()
	in := NewInjector(plan, clock)

	at := func(d time.Duration, node string, want float64) {
		t.Helper()
		*now = d
		if got := in.SlowFactor(msg.Loc(node)); got != want {
			t.Errorf("SlowFactor(%s) at %v = %v, want %v", node, d, got, want)
		}
	}
	at(0, "r1", 1)                     // before the window
	at(1500*time.Millisecond, "r1", 4) // first window only
	at(2500*time.Millisecond, "r1", 8) // both active: factors multiply
	at(5*time.Second, "r1", 2)         // first healed, unbounded one persists
	at(5*time.Second, "r2", 16)
	at(5*time.Second, "r3", 1) // unnamed node unaffected
}
