package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// The lexer. Tokens carry their position for error messages.

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , * = < > <= >= <> != + - ? .
)

type token struct {
	kind tokKind
	text string // identifier (upper-cased for keywords), punctuation, raw number
	val  Value  // for numbers and strings
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9':
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case strings.IndexByte("(),*=<>+-?.", c) >= 0:
			l.lexPunct(start)
		default:
			return nil, fmt.Errorf("sqldb: unexpected character %q at %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		case '-':
			// -- line comment
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
				for l.pos < len(l.src) && l.src[l.pos] != '\n' {
					l.pos++
				}
				continue
			}
			return
		default:
			return
		}
	}
}

func (l *lexer) lexNumber(start int) error {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("sqldb: bad number %q at %d: %w", text, start, err)
		}
		l.toks = append(l.toks, token{kind: tokNumber, text: text, val: f, pos: start})
		return nil
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return fmt.Errorf("sqldb: bad number %q at %d: %w", text, start, err)
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, val: n, pos: start})
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), val: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqldb: unterminated string at %d", start)
}

func (l *lexer) lexPunct(start int) {
	c := l.src[l.pos]
	l.pos++
	text := string(c)
	if l.pos < len(l.src) {
		two := text + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "<>", "!=":
			text = two
			l.pos++
		}
	}
	if text == "!=" {
		text = "<>"
	}
	l.toks = append(l.toks, token{kind: tokPunct, text: text, pos: start})
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
