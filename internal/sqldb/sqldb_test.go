package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustOpen(t *testing.T) *DB {
	t.Helper()
	db, err := Open("h2:mem:test")
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustExec(t *testing.T, db *DB, sql string, args ...Value) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func setupAccounts(t *testing.T, db *DB, n int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE accounts (id INT PRIMARY KEY, owner VARCHAR(32), balance INT)")
	for i := 0; i < n; i++ {
		mustExec(t, db, "INSERT INTO accounts (id, owner, balance) VALUES (?, ?, ?)",
			i, fmt.Sprintf("owner%d", i), 100)
	}
}

// ----------------------------------------------------------------- lexer --

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s', 3.5, -7 FROM t WHERE x <= ? -- comment")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[1].text != "a" {
		t.Errorf("token 1 = %+v", toks[1])
	}
	if toks[3].val != "it's" {
		t.Errorf("string literal = %v", toks[3].val)
	}
	if toks[5].val != 3.5 {
		t.Errorf("float literal = %v", toks[5].val)
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT #"); err == nil {
		t.Error("bad character accepted")
	}
}

// ---------------------------------------------------------------- parser --

func TestParseStatements(t *testing.T) {
	tests := []string{
		"CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c FLOAT)",
		"CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))",
		"CREATE TABLE IF NOT EXISTS t (a INT PRIMARY KEY)",
		"DROP TABLE t",
		"DROP TABLE IF EXISTS t",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"INSERT INTO t VALUES (1, 2.5, NULL)",
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE a = 1 AND b <> 'x' ORDER BY b DESC LIMIT 10",
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(DISTINCT a), SUM(b), MIN(c), MAX(c) FROM t WHERE a >= 5",
		"SELECT a FROM t WHERE a = ? FOR UPDATE",
		"UPDATE t SET b = b + 1, c = ? WHERE a = 3",
		"DELETE FROM t WHERE a < 100",
		"BEGIN",
		"START TRANSACTION",
		"COMMIT",
		"ROLLBACK",
		"SELECT a FROM t WHERE a = -5",
		"UPDATE t SET b = (b + 1) * 2 WHERE a = 1",
	}
	for _, sql := range tests {
		t.Run(sql, func(t *testing.T) {
			if _, err := Parse(sql); err != nil {
				t.Errorf("Parse: %v", err)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",
		"FROBNICATE t",
		"SELECT FROM t",
		"CREATE TABLE t",
		"CREATE TABLE t (a WIBBLE)",
		"INSERT INTO t VALUES",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t extra garbage trailing",
		"UPDATE t SET",
		"SELECT SUM(*) FROM t",
	}
	for _, sql := range tests {
		t.Run(sql, func(t *testing.T) {
			if _, err := Parse(sql); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", sql)
			}
		})
	}
}

// ------------------------------------------------------------------ exec --

func TestCreateInsertSelect(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 3)
	res := mustExec(t, db, "SELECT id, owner, balance FROM accounts WHERE id = 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(1) || res.Rows[0][1] != "owner1" || res.Rows[0][2] != int64(100) {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestSelectStar(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 2)
	res := mustExec(t, db, "SELECT * FROM accounts")
	if len(res.Rows) != 2 || len(res.Cols) != 3 {
		t.Errorf("rows=%d cols=%v", len(res.Rows), res.Cols)
	}
	// Scan returns PK order.
	if res.Rows[0][0] != int64(0) || res.Rows[1][0] != int64(1) {
		t.Errorf("scan order = %v", res.Rows)
	}
}

func TestUpdateArithmetic(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 1)
	mustExec(t, db, "UPDATE accounts SET balance = balance + 42 WHERE id = 0")
	res := mustExec(t, db, "SELECT balance FROM accounts WHERE id = 0")
	if res.Rows[0][0] != int64(142) {
		t.Errorf("balance = %v", res.Rows[0][0])
	}
}

func TestUpdateRejectsPKChange(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 1)
	if _, err := db.Exec("UPDATE accounts SET id = 9 WHERE id = 0"); err == nil {
		t.Error("PK update accepted")
	}
}

func TestDelete(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 10)
	res := mustExec(t, db, "DELETE FROM accounts WHERE id >= 5")
	if res.Affected != 5 {
		t.Errorf("Affected = %d", res.Affected)
	}
	if n, _ := db.TableLen("accounts"); n != 5 {
		t.Errorf("remaining = %d", n)
	}
}

func TestDuplicatePK(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 1)
	_, err := db.Exec("INSERT INTO accounts (id, owner, balance) VALUES (0, 'dup', 0)")
	if !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v, want ErrDuplicate", err)
	}
}

func TestNoTable(t *testing.T) {
	db := mustOpen(t)
	_, err := db.Exec("SELECT * FROM ghosts")
	if !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v, want ErrNoTable", err)
	}
}

func TestCompositePK(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE ol (o_id INT, line INT, item TEXT, PRIMARY KEY (o_id, line))")
	mustExec(t, db, "INSERT INTO ol VALUES (1, 1, 'a'), (1, 2, 'b'), (2, 1, 'c')")
	res := mustExec(t, db, "SELECT item FROM ol WHERE o_id = 1 AND line = 2")
	if len(res.Rows) != 1 || res.Rows[0][0] != "b" {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT COUNT(*) FROM ol WHERE o_id = 1")
	if res.Rows[0][0] != int64(2) {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestOrderByLimit(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 5)
	mustExec(t, db, "UPDATE accounts SET balance = id * 10 WHERE id >= 0")
	res := mustExec(t, db, "SELECT id FROM accounts ORDER BY balance DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(4) || res.Rows[1][0] != int64(3) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 4)
	mustExec(t, db, "UPDATE accounts SET balance = id WHERE id >= 0")
	res := mustExec(t, db, "SELECT COUNT(*), SUM(balance), MIN(balance), MAX(balance) FROM accounts")
	row := res.Rows[0]
	if row[0] != int64(4) || row[1] != int64(6) || row[2] != int64(0) || row[3] != int64(3) {
		t.Errorf("aggregates = %v", row)
	}
}

func TestCountDistinct(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE s (id INT PRIMARY KEY, item INT)")
	for i := 0; i < 6; i++ {
		mustExec(t, db, "INSERT INTO s VALUES (?, ?)", i, i%3)
	}
	res := mustExec(t, db, "SELECT COUNT(DISTINCT item) FROM s")
	if res.Rows[0][0] != int64(3) {
		t.Errorf("distinct = %v", res.Rows[0][0])
	}
}

func TestTransactionRollback(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 2)
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "UPDATE accounts SET balance = 0 WHERE id = 0")
	mustExec(t, db, "DELETE FROM accounts WHERE id = 1")
	mustExec(t, db, "INSERT INTO accounts VALUES (7, 'new', 1)")
	mustExec(t, db, "ROLLBACK")

	res := mustExec(t, db, "SELECT id, balance FROM accounts ORDER BY id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] != int64(100) {
		t.Errorf("balance after rollback = %v", res.Rows[0][1])
	}
	if db.Stats().Aborts != 1 {
		t.Errorf("aborts = %d", db.Stats().Aborts)
	}
}

func TestTransactionCommit(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 1)
	mustExec(t, db, "BEGIN")
	mustExec(t, db, "UPDATE accounts SET balance = 7 WHERE id = 0")
	mustExec(t, db, "COMMIT")
	res := mustExec(t, db, "SELECT balance FROM accounts WHERE id = 0")
	if res.Rows[0][0] != int64(7) {
		t.Errorf("balance = %v", res.Rows[0][0])
	}
}

func TestTxErrors(t *testing.T) {
	db := mustOpen(t)
	if _, err := db.Exec("COMMIT"); !errors.Is(err, ErrNoTx) {
		t.Errorf("COMMIT outside tx: %v", err)
	}
	if _, err := db.Exec("ROLLBACK"); !errors.Is(err, ErrNoTx) {
		t.Errorf("ROLLBACK outside tx: %v", err)
	}
	mustExec(t, db, "BEGIN")
	if _, err := db.Exec("BEGIN"); !errors.Is(err, ErrInTx) {
		t.Errorf("nested BEGIN: %v", err)
	}
}

func TestNullHandling(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE n (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO n VALUES (1, NULL), (2, 5)")
	res := mustExec(t, db, "SELECT COUNT(v), SUM(v) FROM n")
	if res.Rows[0][0] != int64(1) || res.Rows[0][1] != int64(5) {
		t.Errorf("aggregates over null = %v", res.Rows[0])
	}
}

func TestFloatColumns(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE d (id INT PRIMARY KEY, amount DECIMAL(12,2))")
	mustExec(t, db, "INSERT INTO d VALUES (1, 10), (2, 2.5)")
	mustExec(t, db, "UPDATE d SET amount = amount * 2 WHERE id = 2")
	res := mustExec(t, db, "SELECT SUM(amount) FROM d")
	if res.Rows[0][0] != 15.0 {
		t.Errorf("sum = %v", res.Rows[0][0])
	}
}

func TestParamNormalization(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE p (id INT PRIMARY KEY, v FLOAT)")
	mustExec(t, db, "INSERT INTO p VALUES (?, ?)", int(3), float32(1.5))
	res := mustExec(t, db, "SELECT v FROM p WHERE id = ?", 3)
	if len(res.Rows) != 1 || res.Rows[0][0] != 1.5 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestMissingParam(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE p (id INT PRIMARY KEY)")
	if _, err := db.Exec("INSERT INTO p VALUES (?)"); err == nil {
		t.Error("missing argument accepted")
	}
}

// -------------------------------------------------------------- snapshot --

func TestSnapshotRestore(t *testing.T) {
	a := mustOpen(t)
	setupAccounts(t, a, 50)
	b := mustOpen(t)
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !Equal(a, b) {
		t.Error("restored database differs")
	}
	// Restored DB is fully operational.
	mustExec(t, b, "UPDATE accounts SET balance = 0 WHERE id = 10")
	if Equal(a, b) {
		t.Error("databases equal after divergence")
	}
}

func TestSplitBatches(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 100)
	dump := db.Snapshot()[0]
	batches := SplitBatches(dump, 200)
	if len(batches) < 2 {
		t.Fatalf("got %d batches, want several", len(batches))
	}
	total := 0
	for _, b := range batches {
		if b.Table != "accounts" {
			t.Errorf("batch table = %q", b.Table)
		}
		total += len(b.Rows)
	}
	if total != 100 {
		t.Errorf("batched rows = %d, want 100", total)
	}
	// Replaying batches reproduces the table.
	fresh := mustOpen(t)
	if err := fresh.Restore([]TableDump{{Schema: dump.Schema}}); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := fresh.InsertBatch(b.Table, b.Rows); err != nil {
			t.Fatal(err)
		}
	}
	if !Equal(db, fresh) {
		t.Error("batch restore differs from source")
	}
}

func TestSnapshotBytesScalesWithRows(t *testing.T) {
	small := mustOpen(t)
	setupAccounts(t, small, 10)
	big := mustOpen(t)
	setupAccounts(t, big, 100)
	sb, bb := SnapshotBytes(small.Snapshot()), SnapshotBytes(big.Snapshot())
	if bb <= sb*5 {
		t.Errorf("snapshot bytes: 10 rows=%d, 100 rows=%d", sb, bb)
	}
}

// --------------------------------------------------------------- engines --

func TestOpenEngines(t *testing.T) {
	for name := range Engines() {
		if _, err := Open(name + ":mem:x"); err != nil {
			t.Errorf("Open(%s): %v", name, err)
		}
	}
	if _, err := Open("oracle:mem:x"); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestEngineLockModes(t *testing.T) {
	e := Engines()
	if e["h2"].Lock != TableLock {
		t.Error("h2 must use table locks (the paper's contention story)")
	}
	if e["mysql-innodb"].Lock != RowLock {
		t.Error("InnoDB must use row locks")
	}
	if e["mysql-mem"].Lock != TableLock {
		t.Error("MySQL memory engine must use table locks")
	}
}

func TestCostOf(t *testing.T) {
	h2 := Engines()["h2"]
	d := Stats{Statements: 1, RowsRead: 2, RowsWritten: 1}
	want := h2.PerStatement + 2*h2.PerRowRead + h2.PerRowWrite
	if got := h2.CostOf(d); got != want {
		t.Errorf("CostOf = %v, want %v", got, want)
	}
}

func TestEngineRelativeSpeeds(t *testing.T) {
	// The evaluation depends on H2 being the fastest engine.
	e := Engines()
	tx := Stats{Statements: 1, RowsRead: 1, RowsWritten: 1}
	h2 := e["h2"].CostOf(tx)
	for _, other := range []string{"hsqldb", "derby"} {
		if e[other].CostOf(tx) <= h2 {
			t.Errorf("%s is not slower than h2", other)
		}
	}
}

// ------------------------------------------------------------- properties --

func TestInsertSelectRoundTripProperty(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE rt (id INT PRIMARY KEY, s TEXT, f FLOAT)")
	used := map[int64]bool{}
	f := func(id int64, s string, fl float64) bool {
		if used[id] {
			return true
		}
		used[id] = true
		if _, err := db.Exec("INSERT INTO rt VALUES (?, ?, ?)", id, s, fl); err != nil {
			return false
		}
		res, err := db.Exec("SELECT s, f FROM rt WHERE id = ?", id)
		if err != nil || len(res.Rows) != 1 {
			return false
		}
		return res.Rows[0][0] == s && res.Rows[0][1] == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingOrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := encodeKeyPart(a%1_000_000_000), encodeKeyPart(b%1_000_000_000)
		av, bv := a%1_000_000_000, b%1_000_000_000
		switch {
		case av < bv:
			return ka < kb
		case av > bv:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRollbackRestoresSnapshotProperty(t *testing.T) {
	// Any random transaction followed by ROLLBACK leaves the database
	// exactly as before — the invariant ShadowDB's abort handling needs.
	db := mustOpen(t)
	setupAccounts(t, db, 20)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		before := db.Snapshot()
		mustExec(t, db, "BEGIN")
		for i := 0; i < 1+rng.Intn(5); i++ {
			id := rng.Intn(25)
			switch rng.Intn(3) {
			case 0:
				_, _ = db.Exec("UPDATE accounts SET balance = balance + ? WHERE id = ?", rng.Intn(100), id)
			case 1:
				_, _ = db.Exec("DELETE FROM accounts WHERE id = ?", id)
			case 2:
				_, _ = db.Exec("INSERT INTO accounts VALUES (?, 'p', 1)", 100+rng.Intn(50))
			}
		}
		if db.InTx() {
			mustExec(t, db, "ROLLBACK")
		}
		after := db.Snapshot()
		if len(before) != len(after) || len(before[0].Rows) != len(after[0].Rows) {
			t.Fatalf("trial %d: row count changed across rollback", trial)
		}
		for r := range before[0].Rows {
			for c := range before[0].Rows[r] {
				if compareValues(before[0].Rows[r][c], after[0].Rows[r][c]) != 0 {
					t.Fatalf("trial %d: row %d differs after rollback", trial, r)
				}
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 3)
	before := db.Stats()
	mustExec(t, db, "SELECT * FROM accounts WHERE id = 1")
	mustExec(t, db, "UPDATE accounts SET balance = 0 WHERE id = 1")
	d := db.Stats().Sub(before)
	if d.Statements != 2 {
		t.Errorf("statements = %d", d.Statements)
	}
	if d.RowsRead < 2 {
		t.Errorf("rows read = %d", d.RowsRead)
	}
	if d.RowsWritten != 1 {
		t.Errorf("rows written = %d", d.RowsWritten)
	}
}

func TestValueHelpers(t *testing.T) {
	if k, _ := KindOf(int64(1)); k != KindInt {
		t.Error("KindOf int64")
	}
	if k, _ := KindOf("x"); k != KindText {
		t.Error("KindOf string")
	}
	if _, ok := KindOf([]int{}); ok {
		t.Error("KindOf accepted a slice")
	}
	if formatValue("o'hara") != "'o''hara'" {
		t.Errorf("formatValue quoting = %q", formatValue("o'hara"))
	}
	if ValueSize("abcd") != 4 || ValueSize(int64(9)) != 8 || ValueSize(nil) != 1 {
		t.Error("ValueSize mismatch")
	}
	if !strings.Contains(KindFloat.String(), "FLOAT") {
		t.Error("Kind.String")
	}
}
