package sqldb

import (
	"fmt"
	"strings"
	"time"
)

// Engine is a database personality: the knobs in which H2, HSQLDB, Derby
// and the MySQL storage engines of the paper's evaluation differ. Real
// work (SQL execution) is identical across engines; the personality
// supplies lock granularity and the virtual CPU-cost model the simulator
// charges for that work.
//
// The paper's evaluation (Section IV-B) hinges on exactly these
// differences: "H2 does not offer row-level locks" (contention collapse
// under the micro-benchmark), "the in-memory storage engine of MySQL only
// provides table locking", "InnoDB uses row-level locks", and "row
// insertion speed constitutes the bottleneck of state transfer".
type Engine struct {
	// Name is the engine identifier ("h2", "hsqldb", "derby",
	// "mysql-mem", "mysql-innodb").
	Name string
	// Lock is the engine's lock granularity.
	Lock LockMode
	// LockTimeout is how long a transaction waits for a lock before
	// aborting.
	LockTimeout time.Duration
	// PerStatement is the fixed virtual cost of one statement.
	PerStatement time.Duration
	// PerRowRead / PerRowWrite / PerRowInsert / PerRowDelete are variable
	// virtual costs.
	PerRowRead   time.Duration
	PerRowWrite  time.Duration
	PerRowInsert time.Duration
	PerRowDelete time.Duration
	// PerRowScan prices rows a scan examines without matching. Real
	// engines walk such rows through an index or in-memory range scan at
	// ~tens of nanoseconds per row, orders of magnitude below a row
	// read; without this distinction a TPC-C stock-level scan would cost
	// seconds of virtual time.
	PerRowScan time.Duration
	// PerColSerialize is the per-column serialization cost of state
	// transfer (Fig. 10b: TPC-C rows serialize slower than micro rows
	// because they have more columns).
	PerColSerialize time.Duration
	// RestoreRowCost is the per-row insertion cost during batched state
	// transfer restore ("row insertion speed constitutes the bottleneck
	// of state transfer").
	RestoreRowCost time.Duration
	// RestoreByteCost is the per-byte insertion cost on top of
	// RestoreRowCost, making wide rows proportionally slower (Fig. 10b's
	// 1 KB rows take ~3x the 16 B rows at scale).
	RestoreByteCost time.Duration
}

// LockMode is a lock granularity.
type LockMode int

// The lock granularities.
const (
	// TableLock locks whole tables (H2, HSQLDB, MySQL memory engine).
	TableLock LockMode = iota + 1
	// RowLock locks individual rows (Derby, InnoDB).
	RowLock
)

// String implements fmt.Stringer.
func (m LockMode) String() string {
	switch m {
	case TableLock:
		return "table"
	case RowLock:
		return "row"
	default:
		return fmt.Sprintf("LockMode(%d)", int(m))
	}
}

// CostOf converts a work delta into virtual CPU time under this engine's
// cost model.
func (e Engine) CostOf(d Stats) time.Duration {
	return time.Duration(d.Statements)*e.PerStatement +
		time.Duration(d.RowsRead)*e.PerRowRead +
		time.Duration(d.RowsScanned)*e.PerRowScan +
		time.Duration(d.RowsWritten)*e.PerRowWrite +
		time.Duration(d.RowsInserted)*e.PerRowInsert +
		time.Duration(d.RowsDeleted)*e.PerRowDelete
}

// Engines returns the built-in personalities. Costs are calibrated so the
// simulated standalone throughputs land in the region the paper reports
// (H2 fastest; HSQLDB and Derby slower; InnoDB slower than the memory
// engine per-op but with row locks).
func Engines() map[string]Engine {
	us := func(n float64) time.Duration { return time.Duration(n * float64(time.Microsecond)) }
	return map[string]Engine{
		"h2": {
			Name: "h2", Lock: TableLock, LockTimeout: 50 * time.Millisecond,
			PerStatement: us(60), PerRowRead: us(15), PerRowWrite: us(80),
			PerRowInsert: us(50), PerRowDelete: us(40), PerRowScan: us(0.05),
			PerColSerialize: us(4), RestoreRowCost: us(44), RestoreByteCost: us(0.09),
		},
		"hsqldb": {
			Name: "hsqldb", Lock: TableLock, LockTimeout: 50 * time.Millisecond,
			PerStatement: us(80), PerRowRead: us(20), PerRowWrite: us(105),
			PerRowInsert: us(65), PerRowDelete: us(50), PerRowScan: us(0.06),
			PerColSerialize: us(5), RestoreRowCost: us(52), RestoreByteCost: us(0.1),
		},
		"derby": {
			Name: "derby", Lock: RowLock, LockTimeout: 50 * time.Millisecond,
			PerStatement: us(120), PerRowRead: us(30), PerRowWrite: us(150),
			PerRowInsert: us(100), PerRowDelete: us(80), PerRowScan: us(0.08),
			PerColSerialize: us(6), RestoreRowCost: us(65), RestoreByteCost: us(0.12),
		},
		"mysql-mem": {
			Name: "mysql-mem", Lock: TableLock, LockTimeout: 50 * time.Millisecond,
			PerStatement: us(100), PerRowRead: us(30), PerRowWrite: us(120),
			PerRowInsert: us(60), PerRowDelete: us(45), PerRowScan: us(0.06),
			PerColSerialize: us(5), RestoreRowCost: us(50), RestoreByteCost: us(0.1),
		},
		"mysql-innodb": {
			Name: "mysql-innodb", Lock: RowLock, LockTimeout: 50 * time.Millisecond,
			PerStatement: us(130), PerRowRead: us(35), PerRowWrite: us(170),
			PerRowInsert: us(90), PerRowDelete: us(70), PerRowScan: us(0.07),
			PerColSerialize: us(5), RestoreRowCost: us(60), RestoreByteCost: us(0.11),
		},
	}
}

// Open creates a database from a JDBC-style URL, e.g. "h2:mem:bank" or
// "derby:mem:accounts" — the paper's "easily plug in any JDBC-enabled
// database by specifying the database driver and the connection URL".
func Open(url string) (*DB, error) {
	name := url
	if i := strings.IndexByte(url, ':'); i >= 0 {
		name = url[:i]
	}
	eng, ok := Engines()[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqldb: unknown engine in URL %q", url)
	}
	return New(eng), nil
}
