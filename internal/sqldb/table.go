package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Table is an in-memory relation with a primary-key hash index. Rows are
// stored by encoded PK; scans materialize keys in PK order so snapshots
// and ORDER-BY-free scans are deterministic.
type Table struct {
	Name   string
	Cols   []ColumnDef
	PK     []int // column indices of the primary key
	colIdx map[string]int
	rows   map[string][]Value
	// keysCache holds the sorted PK keys; scans over large tables would
	// otherwise pay an O(n log n) sort each. Inserts and deletes
	// invalidate it (updates cannot change keys: PK columns are
	// immutable).
	keysCache []string
}

func newTable(st CreateTable) (*Table, error) {
	t := &Table{
		Name:   st.Name,
		Cols:   append([]ColumnDef(nil), st.Cols...),
		colIdx: make(map[string]int, len(st.Cols)),
		rows:   make(map[string][]Value),
	}
	for i, c := range st.Cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column %q in table %s", c.Name, st.Name)
		}
		t.colIdx[c.Name] = i
	}
	if len(st.PrimaryKey) == 0 {
		return nil, fmt.Errorf("sqldb: table %s has no primary key", st.Name)
	}
	for _, k := range st.PrimaryKey {
		i, ok := t.colIdx[k]
		if !ok {
			return nil, fmt.Errorf("sqldb: primary key column %q not in table %s", k, st.Name)
		}
		t.PK = append(t.PK, i)
	}
	return t, nil
}

// colIndex resolves a column name.
func (t *Table) colIndex(name string) (int, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return 0, fmt.Errorf("sqldb: no column %q in table %s", name, t.Name)
	}
	return i, nil
}

// key encodes the PK of a row as a sortable string.
func (t *Table) key(row []Value) string {
	parts := make([]string, len(t.PK))
	for i, c := range t.PK {
		parts[i] = encodeKeyPart(row[c])
	}
	return strings.Join(parts, "\x00")
}

// encodeKeyPart renders a value so lexicographic order matches value
// order: integers as sign-prefixed fixed-width decimals, floats likewise
// on their integer part, strings raw.
func encodeKeyPart(v Value) string {
	switch x := v.(type) {
	case nil:
		return "\x01"
	case int64:
		if x < 0 {
			// Invert negative magnitudes so they sort before positives.
			return fmt.Sprintf("0%019d", int64(1e18)+x)
		}
		return fmt.Sprintf("1%019d", x)
	case float64:
		return fmt.Sprintf("f%024.6f", x)
	case string:
		return "s" + x
	default:
		return fmt.Sprintf("?%v", x)
	}
}

// sortedKeys returns all PK keys in order, cached until the key set
// changes. Callers must not mutate the returned slice.
func (t *Table) sortedKeys() []string {
	if t.keysCache != nil {
		return t.keysCache
	}
	keys := make([]string, 0, len(t.rows))
	for k := range t.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t.keysCache = keys
	return keys
}

// put stores a row and invalidates the key cache when the key is new.
func (t *Table) put(key string, row []Value) {
	if _, exists := t.rows[key]; !exists {
		t.keysCache = nil
	}
	t.rows[key] = row
}

// del removes a row and invalidates the key cache.
func (t *Table) del(key string) {
	if _, exists := t.rows[key]; exists {
		t.keysCache = nil
	}
	delete(t.rows, key)
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.rows) }

// Schema reconstructs the CREATE TABLE statement of the table, used by
// snapshots.
func (t *Table) Schema() CreateTable {
	pk := make([]string, len(t.PK))
	for i, c := range t.PK {
		pk[i] = t.Cols[c].Name
	}
	cols := make([]ColumnDef, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = ColumnDef{Name: c.Name, Kind: c.Kind}
	}
	return CreateTable{Name: t.Name, Cols: cols, PrimaryKey: pk}
}

// RowBytes models the serialized size of a row (payload only).
func RowBytes(row []Value) int {
	n := 0
	for _, v := range row {
		n += ValueSize(v)
	}
	return n
}
