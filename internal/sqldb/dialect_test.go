package sqldb

import (
	"errors"
	"testing"
)

// Additional dialect coverage: the statements the workloads and the state
// transfer rely on, plus edge cases of the executor.

func TestDropTable(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE d (id INT PRIMARY KEY)")
	mustExec(t, db, "DROP TABLE d")
	if _, err := db.Exec("SELECT * FROM d"); !errors.Is(err, ErrNoTable) {
		t.Errorf("table survived drop: %v", err)
	}
	if _, err := db.Exec("DROP TABLE d"); err == nil {
		t.Error("dropping a missing table succeeded")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS d")
}

func TestCreateIfNotExists(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE c (id INT PRIMARY KEY)")
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS c (id INT PRIMARY KEY)")
	if _, err := db.Exec("CREATE TABLE c (id INT PRIMARY KEY)"); err == nil {
		t.Error("duplicate CREATE TABLE succeeded")
	}
}

func TestSelectForUpdateParsesAndRuns(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 3)
	res := mustExec(t, db, "SELECT balance FROM accounts WHERE id = 1 FOR UPDATE")
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestMultiRowInsert(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE m (id INT PRIMARY KEY, v INT)")
	res := mustExec(t, db, "INSERT INTO m VALUES (1, 10), (2, 20), (3, 30)")
	if res.Affected != 3 {
		t.Errorf("Affected = %d", res.Affected)
	}
	sum := mustExec(t, db, "SELECT SUM(v) FROM m")
	if sum.Rows[0][0] != int64(60) {
		t.Errorf("sum = %v", sum.Rows[0][0])
	}
}

func TestWhereRangeOperators(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 10)
	tests := []struct {
		where string
		want  int
	}{
		{"id < 3", 3},
		{"id <= 3", 4},
		{"id > 7", 2},
		{"id >= 7", 3},
		{"id <> 5", 9},
		{"id >= 2 AND id < 5", 3},
	}
	for _, tt := range tests {
		res := mustExec(t, db, "SELECT id FROM accounts WHERE "+tt.where)
		if len(res.Rows) != tt.want {
			t.Errorf("WHERE %s returned %d rows, want %d", tt.where, len(res.Rows), tt.want)
		}
	}
}

func TestStringComparison(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE s (id INT PRIMARY KEY, name TEXT)")
	mustExec(t, db, "INSERT INTO s VALUES (1, 'alice'), (2, 'bob'), (3, 'carol')")
	res := mustExec(t, db, "SELECT id FROM s WHERE name = 'bob'")
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(2) {
		t.Errorf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT id FROM s WHERE name > 'alice' ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(2) {
		t.Errorf("range over strings = %v", res.Rows)
	}
}

func TestUpdateMultipleColumns(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 2)
	mustExec(t, db, "UPDATE accounts SET balance = balance * 2, owner = 'x' WHERE id = 1")
	res := mustExec(t, db, "SELECT owner, balance FROM accounts WHERE id = 1")
	if res.Rows[0][0] != "x" || res.Rows[0][1] != int64(200) {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestUpdateWithoutWhereTouchesAll(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 5)
	res := mustExec(t, db, "UPDATE accounts SET balance = 0")
	if res.Affected != 5 {
		t.Errorf("Affected = %d", res.Affected)
	}
}

func TestDeleteAll(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 5)
	mustExec(t, db, "DELETE FROM accounts")
	if n, _ := db.TableLen("accounts"); n != 0 {
		t.Errorf("rows left = %d", n)
	}
}

func TestOrderByAscendingDefault(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 3)
	res := mustExec(t, db, "SELECT id FROM accounts ORDER BY id ASC")
	for i, row := range res.Rows {
		if row[0] != int64(i) {
			t.Fatalf("order broken at %d: %v", i, res.Rows)
		}
	}
}

func TestLimitZero(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 3)
	res := mustExec(t, db, "SELECT id FROM accounts LIMIT 0")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestNegativeLiteral(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE n (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO n VALUES (1, -5)")
	res := mustExec(t, db, "SELECT v FROM n WHERE v < 0")
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(-5) {
		t.Errorf("rows = %v", res.Rows)
	}
	// Negative PKs keep their ordering through the key encoding.
	mustExec(t, db, "INSERT INTO n VALUES (-2, 0), (-1, 0)")
	res = mustExec(t, db, "SELECT id FROM n ORDER BY id")
	if res.Rows[0][0] != int64(-2) || res.Rows[1][0] != int64(-1) || res.Rows[2][0] != int64(1) {
		t.Errorf("ordering with negatives = %v", res.Rows)
	}
}

func TestParenthesizedExpressions(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE p (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO p VALUES (1, 10)")
	mustExec(t, db, "UPDATE p SET v = (v + 2) * 3 WHERE id = 1")
	res := mustExec(t, db, "SELECT v FROM p WHERE id = 1")
	if res.Rows[0][0] != int64(36) {
		t.Errorf("v = %v", res.Rows[0][0])
	}
}

func TestStatementCacheReuse(t *testing.T) {
	db := mustOpen(t)
	setupAccounts(t, db, 2)
	// The same SQL text with different args must not interfere.
	for i := 0; i < 10; i++ {
		res := mustExec(t, db, "SELECT balance FROM accounts WHERE id = ?", i%2)
		if len(res.Rows) != 1 {
			t.Fatalf("iteration %d: rows = %v", i, res.Rows)
		}
	}
}

func TestCoerceIntToFloatColumn(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE f (id INT PRIMARY KEY, v FLOAT)")
	mustExec(t, db, "INSERT INTO f VALUES (1, 5)") // int literal into float col
	res := mustExec(t, db, "SELECT v FROM f WHERE id = 1")
	if res.Rows[0][0] != 5.0 {
		t.Errorf("v = %v (%T)", res.Rows[0][0], res.Rows[0][0])
	}
	// Float with fraction cannot land in an INT column.
	if _, err := db.Exec("INSERT INTO f (id) VALUES (2.5)"); err == nil {
		t.Error("fractional PK accepted into INT column")
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE w (id INT PRIMARY KEY, s TEXT)")
	mustExec(t, db, "INSERT INTO w VALUES (1, 'pear'), (2, 'apple'), (3, 'zu')")
	res := mustExec(t, db, "SELECT MIN(s), MAX(s) FROM w")
	if res.Rows[0][0] != "apple" || res.Rows[0][1] != "zu" {
		t.Errorf("min/max = %v", res.Rows[0])
	}
}
