package sqldb

import (
	"fmt"
	"sort"
)

// Snapshots and batched restore: the substrate of ShadowDB state transfer
// (Section III of the paper). "State transfer consists in selecting the
// rows of each table, sending the rows in batches, and inserting them in
// the corresponding table at the destination replica."

// TableDump is one table's schema plus all rows in PK order.
type TableDump struct {
	Schema CreateTable
	Rows   [][]Value
}

// Snapshot dumps every table, tables sorted by name, rows in PK order.
func (db *DB) Snapshot() []TableDump {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	dumps := make([]TableDump, 0, len(names))
	for _, n := range names {
		t := db.tables[n]
		rows := make([][]Value, 0, t.Len())
		for _, k := range t.sortedKeys() {
			rows = append(rows, append([]Value(nil), t.rows[k]...))
		}
		dumps = append(dumps, TableDump{Schema: t.Schema(), Rows: rows})
	}
	return dumps
}

// Restore replaces the database contents with the snapshot.
func (db *DB) Restore(dumps []TableDump) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables = make(map[string]*Table, len(dumps))
	db.inTx = false
	db.undo = nil
	for _, d := range dumps {
		t, err := newTable(d.Schema)
		if err != nil {
			return fmt.Errorf("restore %s: %w", d.Schema.Name, err)
		}
		for _, row := range d.Rows {
			r := append([]Value(nil), row...)
			t.put(t.key(r), r)
			db.stats.RowsInserted++
		}
		db.tables[d.Schema.Name] = t
	}
	return nil
}

// InsertBatch inserts pre-built rows into one table, the receive side of
// batched state transfer. Existing keys are overwritten (transfer is
// idempotent under retry).
func (db *DB) InsertBatch(table string, rows [][]Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(table)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(t.Cols) {
			return fmt.Errorf("sqldb: batch row has %d values, table %s has %d columns",
				len(row), table, len(t.Cols))
		}
		r := append([]Value(nil), row...)
		t.put(t.key(r), r)
		db.stats.RowsInserted++
	}
	return nil
}

// Batch is a slice of one table's rows sized for a transfer message.
type Batch struct {
	Table string
	Rows  [][]Value
}

// SplitBatches cuts a dump into batches of at most targetBytes serialized
// payload each (at least one row per batch) — the paper used batches
// "close to 50 kilobytes in serialized form".
func SplitBatches(d TableDump, targetBytes int) []Batch {
	if targetBytes <= 0 {
		targetBytes = 50 * 1024
	}
	var out []Batch
	cur := Batch{Table: d.Schema.Name}
	size := 0
	for _, row := range d.Rows {
		rb := RowBytes(row)
		if size > 0 && size+rb > targetBytes {
			out = append(out, cur)
			cur = Batch{Table: d.Schema.Name}
			size = 0
		}
		cur.Rows = append(cur.Rows, row)
		size += rb
	}
	if len(cur.Rows) > 0 || len(out) == 0 {
		out = append(out, cur)
	}
	return out
}

// DumpBytes models the serialized payload size of a dump.
func DumpBytes(d TableDump) int {
	n := 0
	for _, row := range d.Rows {
		n += RowBytes(row)
	}
	return n
}

// SnapshotBytes models the total payload of a snapshot.
func SnapshotBytes(dumps []TableDump) int {
	n := 0
	for _, d := range dumps {
		n += DumpBytes(d)
	}
	return n
}

// Equal reports whether two databases hold identical data — the
// state-agreement validator of the replication tests.
func Equal(a, b *DB) bool {
	da, dbb := a.Snapshot(), b.Snapshot()
	if len(da) != len(dbb) {
		return false
	}
	for i := range da {
		if da[i].Schema.Name != dbb[i].Schema.Name || len(da[i].Rows) != len(dbb[i].Rows) {
			return false
		}
		for r := range da[i].Rows {
			ra, rb := da[i].Rows[r], dbb[i].Rows[r]
			if len(ra) != len(rb) {
				return false
			}
			for c := range ra {
				if compareValues(ra[c], rb[c]) != 0 {
					return false
				}
			}
		}
	}
	return true
}
