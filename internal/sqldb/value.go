// Package sqldb is the in-memory SQL database substrate of the
// reproduction. The paper replicates unmodified JDBC databases (H2,
// HSQLDB, Apache Derby); this package provides the equivalent: a small
// relational engine with a SQL dialect, transactions with rollback,
// primary-key indexes, snapshots with batched restore (the substrate of
// ShadowDB state transfer), and pluggable engine personalities that differ
// in lock granularity and speed the way the paper's databases do.
//
// The engine is single-threaded by design: ShadowDB executes transactions
// sequentially at each replica (Section III-A of the paper). Concurrency
// and lock contention for the baseline systems are modeled at the
// simulator layer with des.Resource, parameterized by each engine's lock
// granularity and timeout.
package sqldb

import (
	"fmt"
	"strconv"
)

// Value is a SQL value: int64, float64, string, or nil (SQL NULL).
type Value = any

// Kind enumerates column types.
type Kind int

// The column types of the dialect.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindText
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindOf classifies a value.
func KindOf(v Value) (Kind, bool) {
	switch v.(type) {
	case int64:
		return KindInt, true
	case float64:
		return KindFloat, true
	case string:
		return KindText, true
	default:
		return 0, false
	}
}

// coerce converts v to the column kind where a lossless conversion
// exists (int->float, int/float literals for either numeric kind).
func coerce(v Value, k Kind) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch k {
	case KindInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
		}
	case KindFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
	case KindText:
		if s, ok := v.(string); ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("sqldb: cannot store %T as %s", v, k)
}

// compareValues orders two non-nil values of the same family. NULL sorts
// first.
func compareValues(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, y)
		case float64:
			return cmpOrdered(float64(x), y)
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return cmpOrdered(x, float64(y))
		case float64:
			return cmpOrdered(x, y)
		}
	case string:
		if y, ok := b.(string); ok {
			return cmpOrdered(x, y)
		}
	}
	// Incomparable kinds order by type name for determinism.
	return cmpOrdered(fmt.Sprintf("%T", a), fmt.Sprintf("%T", b))
}

func cmpOrdered[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// formatValue renders a value as a SQL literal.
func formatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return "'" + escapeString(x) + "'"
	default:
		return fmt.Sprintf("%v", x)
	}
}

func escapeString(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// ValueSize models the serialized size of a value in bytes, used by the
// state-transfer cost model (Fig. 10b: "serialization overhead is
// proportional to the number of table columns").
func ValueSize(v Value) int {
	switch x := v.(type) {
	case nil:
		return 1
	case int64:
		return 8
	case float64:
		return 8
	case string:
		return len(x)
	default:
		return 8
	}
}
