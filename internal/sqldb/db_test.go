package sqldb

import "testing"

func TestSavepointRollbackTo(t *testing.T) {
	db := mustOpen(t)
	mustExec(t, db, "CREATE TABLE sp (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO sp (id, v) VALUES (?, ?)", 1, 10)

	if _, err := db.Savepoint(); err != ErrNoTx {
		t.Fatalf("Savepoint outside tx: err = %v, want ErrNoTx", err)
	}
	if err := db.RollbackTo(0); err != ErrNoTx {
		t.Fatalf("RollbackTo outside tx: err = %v, want ErrNoTx", err)
	}

	mustExec(t, db, "BEGIN")
	mustExec(t, db, "UPDATE sp SET v = ? WHERE id = ?", 20, 1)
	mark, err := db.Savepoint()
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "UPDATE sp SET v = ? WHERE id = ?", 30, 1)
	mustExec(t, db, "INSERT INTO sp (id, v) VALUES (?, ?)", 2, 99)
	if err := db.RollbackTo(mark); err != nil {
		t.Fatal(err)
	}
	// Work after the savepoint is undone, work before it survives, and
	// the transaction is still open.
	if !db.InTx() {
		t.Fatal("RollbackTo closed the transaction")
	}
	mustExec(t, db, "COMMIT")
	res, err := db.Exec("SELECT v FROM sp WHERE id = ?", 1)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].(int64) != 20 {
		t.Errorf("v = %v (err %v), want 20", res.Rows, err)
	}
	if res, _ := db.Exec("SELECT v FROM sp WHERE id = ?", 2); len(res.Rows) != 0 {
		t.Errorf("rolled-back insert visible: %v", res.Rows)
	}
	if err := db.RollbackTo(-1); err == nil {
		t.Error("RollbackTo(-1) succeeded outside tx, want error")
	}
}
