package sqldb

import (
	"fmt"
	"strings"
)

// The recursive-descent parser for the dialect described in ast.go.

type parser struct {
	toks   []token
	pos    int
	params int
}

// Parse parses a single SQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, fmt.Errorf("parse %q: %w", truncateSQL(src), err)
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("parse %q: trailing input at %q", truncateSQL(src), p.peek().text)
	}
	return stmt, nil
}

func truncateSQL(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

// keyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("expected %s at %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return fmt.Errorf("expected %q at %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("expected identifier at %q", t.text)
	}
	p.pos++
	return strings.ToLower(t.text), nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.keyword("CREATE"):
		return p.createTable()
	case p.keyword("DROP"):
		return p.dropTable()
	case p.keyword("INSERT"):
		return p.insert()
	case p.keyword("SELECT"):
		return p.selectStmt()
	case p.keyword("UPDATE"):
		return p.update()
	case p.keyword("DELETE"):
		return p.delete()
	case p.keyword("BEGIN"), p.keyword("START"):
		p.keyword("TRANSACTION") // optional
		return Begin{}, nil
	case p.keyword("COMMIT"):
		return Commit{}, nil
	case p.keyword("ROLLBACK"):
		return Rollback{}, nil
	default:
		return nil, fmt.Errorf("unknown statement at %q", p.peek().text)
	}
}

func (p *parser) createTable() (Stmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := CreateTable{}
	if p.keyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.keyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				st.PrimaryKey = append(st.PrimaryKey, col)
				if !p.punct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
		}
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// Inline PK markers fold into the key list.
	for _, c := range st.Cols {
		if c.PK {
			st.PrimaryKey = append(st.PrimaryKey, c.Name)
		}
	}
	return st, nil
}

func (p *parser) columnDef() (ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	t := p.peek()
	if t.kind != tokIdent {
		return ColumnDef{}, fmt.Errorf("expected type after column %s", name)
	}
	p.pos++
	var kind Kind
	switch strings.ToUpper(t.text) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		kind = KindInt
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		kind = KindFloat
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		kind = KindText
	default:
		return ColumnDef{}, fmt.Errorf("unknown type %q for column %s", t.text, name)
	}
	// Optional (n) or (n,m) length spec, ignored.
	if p.punct("(") {
		for !p.punct(")") {
			if p.atEOF() {
				return ColumnDef{}, fmt.Errorf("unterminated type spec for %s", name)
			}
			p.pos++
		}
	}
	def := ColumnDef{Name: name, Kind: kind}
	if p.keyword("PRIMARY") {
		if err := p.expectKeyword("KEY"); err != nil {
			return ColumnDef{}, err
		}
		def.PK = true
	}
	if p.keyword("NOT") {
		if err := p.expectKeyword("NULL"); err != nil {
			return ColumnDef{}, err
		}
	}
	return def, nil
}

func (p *parser) dropTable() (Stmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := DropTable{}
	if p.keyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) insert() (Stmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	st := Insert{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.punct("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.punct(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	st := Select{Limit: -1}
	for {
		se, err := p.selectExpr()
		if err != nil {
			return nil, err
		}
		st.Exprs = append(st.Exprs, se)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if st.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.OrderBy = col
		if p.keyword("DESC") {
			st.Desc = true
		} else {
			p.keyword("ASC")
		}
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("expected number after LIMIT")
		}
		p.pos++
		n, ok := t.val.(int64)
		if !ok {
			return nil, fmt.Errorf("LIMIT must be an integer")
		}
		st.Limit = int(n)
	}
	if p.keyword("FOR") {
		if err := p.expectKeyword("UPDATE"); err != nil {
			return nil, err
		}
		st.ForUpdate = true
	}
	return st, nil
}

func (p *parser) selectExpr() (SelectExpr, error) {
	if p.punct("*") {
		return SelectExpr{Star: true}, nil
	}
	save := p.save()
	name, err := p.ident()
	if err != nil {
		return SelectExpr{}, err
	}
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "MIN", "MAX":
		if p.punct("(") {
			se := SelectExpr{Agg: strings.ToLower(name)}
			if p.punct("*") {
				if se.Agg != "count" {
					return SelectExpr{}, fmt.Errorf("%s(*) is not supported", name)
				}
			} else {
				if p.keyword("DISTINCT") {
					se.Distinct = true
				}
				col, err := p.ident()
				if err != nil {
					return SelectExpr{}, err
				}
				se.Col = col
			}
			if err := p.expectPunct(")"); err != nil {
				return SelectExpr{}, err
			}
			return se, nil
		}
		p.restore(save)
		name, _ = p.ident()
	}
	return SelectExpr{Col: name}, nil
}

func (p *parser) whereClause() ([]Cond, error) {
	if !p.keyword("WHERE") {
		return nil, nil
	}
	var conds []Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokPunct {
			return nil, fmt.Errorf("expected operator after %s", col)
		}
		var op CondOp
		switch t.text {
		case "=":
			op = OpEq
		case "<>":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return nil, fmt.Errorf("unknown operator %q", t.text)
		}
		p.pos++
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Col: col, Op: op, Val: val})
		if !p.keyword("AND") {
			break
		}
	}
	return conds, nil
}

func (p *parser) update() (Stmt, error) {
	st := Update{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assign{Col: col, Val: val})
		if !p.punct(",") {
			break
		}
	}
	if st.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) delete() (Stmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	st := Delete{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if st.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	return st, nil
}

// expr parses additive expressions over terms.
func (p *parser) expr() (Expr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		var op byte
		switch {
		case p.punct("+"):
			op = '+'
		case p.punct("-"):
			op = '-'
		case p.punct("*"):
			op = '*'
		default:
			return left, nil
		}
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) term() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber, t.kind == tokString:
		p.pos++
		return Lit{V: t.val}, nil
	case t.kind == tokPunct && t.text == "?":
		p.pos++
		e := Param{N: p.params}
		p.params++
		return e, nil
	case t.kind == tokPunct && t.text == "-":
		p.pos++
		inner, err := p.term()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: '-', L: Lit{V: int64(0)}, R: inner}, nil
	case t.kind == tokPunct && t.text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		if strings.EqualFold(t.text, "NULL") {
			p.pos++
			return Lit{V: nil}, nil
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return ColRef{Name: name}, nil
	default:
		return nil, fmt.Errorf("unexpected token %q in expression", t.text)
	}
}
