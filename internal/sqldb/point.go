package sqldb

import "fmt"

// Point access: allocation-free fast paths for single-row primary-key
// operations on tables with a single int64 PK column. The SQL path
// (Exec/execSelect/execUpdate) materializes condition closures, pinned
// maps, and result slices on every call; these entry points encode the
// PK into a reusable scratch buffer and touch the row in place, so the
// steady-state read-serve loop performs no allocations at all
// (readpath_bench_test pins this).

// appendIntKey appends the encodeKeyPart rendering of an int64 —
// sign prefix plus 19 fixed-width decimal digits — without allocating.
func appendIntKey(buf []byte, x int64) []byte {
	var sign byte = '1'
	if x < 0 {
		sign = '0'
		x = int64(1e18) + x
	}
	buf = append(buf, sign)
	var tmp [19]byte
	for i := 18; i >= 0; i-- {
		tmp[i] = byte('0' + x%10)
		x /= 10
	}
	return append(buf, tmp[:]...)
}

// pointRow locates the row with the given int64 primary key. The
// caller holds db.mu.
func (db *DB) pointRow(table string, pk int64) (*Table, []Value, bool) {
	t, ok := db.tables[table]
	if !ok || len(t.PK) != 1 {
		return nil, nil, false
	}
	db.keyBuf = appendIntKey(db.keyBuf[:0], pk)
	row, ok := t.rows[string(db.keyBuf)] // compiler-recognized no-copy lookup
	if !ok {
		return t, nil, false
	}
	return t, row, true
}

// PointGet returns the named column of the row with the given int64
// primary key. The returned Value is the stored (already boxed) value;
// the call allocates nothing.
func (db *DB) PointGet(table string, pk int64, col string) (Value, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, row, ok := db.pointRow(table, pk)
	if !ok {
		return nil, false
	}
	ci, ok := t.colIdx[col]
	if !ok {
		return nil, false
	}
	db.stats.RowsRead++
	return row[ci], true
}

// PointAddInt adds delta to an int64 column of the row with the given
// primary key, in place. The mutation is NOT undo-logged: a RollbackTo
// across it will not restore the previous value. It is intended for
// FastProc bodies, which by contract cannot fail after mutating (the
// executor's batch path never rolls back across them). Returns false
// when the row or column does not exist or the column is not an int64.
func (db *DB) PointAddInt(table string, pk int64, col string, delta int64) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, row, ok := db.pointRow(table, pk)
	if !ok {
		return false, nil
	}
	ci, ok := t.colIdx[col]
	if !ok {
		return false, fmt.Errorf("sqldb: no column %q in table %s", col, table)
	}
	v, ok := row[ci].(int64)
	if !ok {
		return false, fmt.Errorf("sqldb: column %q of table %s is not an integer", col, table)
	}
	row[ci] = v + delta
	db.stats.RowsWritten++
	return true, nil
}
