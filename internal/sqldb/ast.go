package sqldb

// The statement AST of the SQL dialect. The dialect covers what the
// paper's workloads need: the bank micro-benchmark, full TPC-C, and
// ShadowDB state transfer (CREATE TABLE / batched INSERT).

// Stmt is a parsed SQL statement.
type Stmt interface {
	isStmt()
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind Kind
	PK   bool // inline PRIMARY KEY marker
}

// CreateTable is CREATE TABLE name (cols..., [PRIMARY KEY (a,b,...)]).
type CreateTable struct {
	Name        string
	Cols        []ColumnDef
	PrimaryKey  []string
	IfNotExists bool
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO t [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// Select is SELECT exprs FROM t [WHERE ...] [ORDER BY col [DESC]] [LIMIT n].
type Select struct {
	Table     string
	Exprs     []SelectExpr
	Where     []Cond
	OrderBy   string
	Desc      bool
	Limit     int  // -1 when absent
	ForUpdate bool // accepted and ignored (locking modeled at the sim layer)
}

// SelectExpr is one output column: a plain column, * (Star), or an
// aggregate.
type SelectExpr struct {
	Star     bool
	Col      string
	Agg      string // "" | "count" | "sum" | "min" | "max"
	Distinct bool   // COUNT(DISTINCT col)
}

// Update is UPDATE t SET col = expr, ... [WHERE ...].
type Update struct {
	Table string
	Set   []Assign
	Where []Cond
}

// Assign is one SET clause.
type Assign struct {
	Col string
	Val Expr
}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where []Cond
}

// Begin, Commit, Rollback are the transaction statements.
type (
	// Begin starts a transaction.
	Begin struct{}
	// Commit commits one.
	Commit struct{}
	// Rollback aborts one.
	Rollback struct{}
)

func (CreateTable) isStmt() {}
func (DropTable) isStmt()   {}
func (Insert) isStmt()      {}
func (Select) isStmt()      {}
func (Update) isStmt()      {}
func (Delete) isStmt()      {}
func (Begin) isStmt()       {}
func (Commit) isStmt()      {}
func (Rollback) isStmt()    {}

// CondOp is a comparison operator in WHERE.
type CondOp int

// The comparison operators.
const (
	OpEq CondOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String implements fmt.Stringer.
func (o CondOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?op"
	}
}

// Cond is one conjunct of a WHERE clause: col op expr.
type Cond struct {
	Col string
	Op  CondOp
	Val Expr
}

// Expr is a scalar expression: a literal, a parameter, a column
// reference, or a binary +/- / * on two sub-expressions.
type Expr interface {
	isExpr()
}

// Lit is a literal value.
type Lit struct{ V Value }

// Param is a ? placeholder, numbered left to right from 0.
type Param struct{ N int }

// ColRef references a column of the current row.
type ColRef struct{ Name string }

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   byte // '+', '-', '*'
	L, R Expr
}

func (Lit) isExpr()     {}
func (Param) isExpr()   {}
func (ColRef) isExpr()  {}
func (BinExpr) isExpr() {}
