package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DB is one database instance. Statement execution is serialized by an
// internal mutex; transactional rollback is implemented with an undo log.
type DB struct {
	mu     sync.Mutex
	eng    Engine
	tables map[string]*Table
	inTx   bool
	undo   []func()
	cache  map[string]Stmt
	stats  Stats
	// keyBuf is the reusable PK-encoding scratch of the point-access
	// fast paths (point.go); guarded by mu like everything else.
	keyBuf []byte
}

// Stats counts work done, the input to the engines' virtual cost models.
type Stats struct {
	Statements   int64
	RowsRead     int64
	RowsScanned  int64 // rows examined but not matched by a scan
	RowsWritten  int64
	RowsInserted int64
	RowsDeleted  int64
	Aborts       int64
}

// Sub returns the difference s - o, for measuring one transaction.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Statements:   s.Statements - o.Statements,
		RowsRead:     s.RowsRead - o.RowsRead,
		RowsScanned:  s.RowsScanned - o.RowsScanned,
		RowsWritten:  s.RowsWritten - o.RowsWritten,
		RowsInserted: s.RowsInserted - o.RowsInserted,
		RowsDeleted:  s.RowsDeleted - o.RowsDeleted,
		Aborts:       s.Aborts - o.Aborts,
	}
}

// Result is the outcome of one statement.
type Result struct {
	// Cols names the output columns of a SELECT.
	Cols []string
	// Rows holds SELECT output.
	Rows [][]Value
	// Affected is the number of rows written/deleted/inserted.
	Affected int
}

// Sentinel errors.
var (
	// ErrNoTable is returned for statements against unknown tables.
	ErrNoTable = errors.New("sqldb: no such table")
	// ErrDuplicate is returned on primary-key violations.
	ErrDuplicate = errors.New("sqldb: duplicate primary key")
	// ErrNoTx is returned for COMMIT/ROLLBACK outside a transaction.
	ErrNoTx = errors.New("sqldb: no transaction in progress")
	// ErrInTx is returned for BEGIN inside a transaction.
	ErrInTx = errors.New("sqldb: transaction already in progress")
)

// New creates an empty database with the given engine personality.
func New(eng Engine) *DB {
	return &DB{
		eng:    eng,
		tables: make(map[string]*Table),
		cache:  make(map[string]Stmt),
	}
}

// Engine returns the database's engine personality.
func (db *DB) Engine() Engine { return db.eng }

// Stats returns a copy of the cumulative work counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// NumTables returns the number of tables.
func (db *DB) NumTables() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables)
}

// TableLen returns a table's row count (0, false when absent).
func (db *DB) TableLen(name string) (int, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return 0, false
	}
	return t.Len(), true
}

// Exec parses (with a statement cache) and executes one statement.
func (db *DB) Exec(sql string, args ...Value) (Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	stmt, ok := db.cache[sql]
	if !ok {
		var err error
		stmt, err = Parse(sql)
		if err != nil {
			return Result{}, err
		}
		db.cache[sql] = stmt
	}
	return db.execStmt(stmt, args)
}

// ExecStmt executes a pre-parsed statement.
func (db *DB) ExecStmt(stmt Stmt, args ...Value) (Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.execStmt(stmt, args)
}

func (db *DB) execStmt(stmt Stmt, args []Value) (Result, error) {
	switch stmt.(type) {
	case Begin, Commit, Rollback:
		// Transaction control does no table work and is free in the cost
		// model.
	default:
		db.stats.Statements++
	}
	switch st := stmt.(type) {
	case CreateTable:
		return db.execCreate(st)
	case DropTable:
		return db.execDrop(st)
	case Insert:
		return db.execInsert(st, args)
	case Select:
		return db.execSelect(st, args)
	case Update:
		return db.execUpdate(st, args)
	case Delete:
		return db.execDelete(st, args)
	case Begin:
		if db.inTx {
			return Result{}, ErrInTx
		}
		db.inTx = true
		db.undo = db.undo[:0]
		return Result{}, nil
	case Commit:
		if !db.inTx {
			return Result{}, ErrNoTx
		}
		db.inTx = false
		db.undo = db.undo[:0]
		return Result{}, nil
	case Rollback:
		if !db.inTx {
			return Result{}, ErrNoTx
		}
		db.rollback()
		return Result{}, nil
	default:
		return Result{}, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// InTx reports whether an explicit transaction is open.
func (db *DB) InTx() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.inTx
}

func (db *DB) rollback() {
	for i := len(db.undo) - 1; i >= 0; i-- {
		db.undo[i]()
	}
	db.undo = db.undo[:0]
	db.inTx = false
	db.stats.Aborts++
}

// Savepoint marks the current position in the open transaction's undo
// log. RollbackTo(mark) later undoes everything after the mark without
// ending the transaction — the partial-rollback primitive group commit
// needs to abort one transaction of a batch while keeping the rest.
func (db *DB) Savepoint() (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.inTx {
		return 0, ErrNoTx
	}
	return len(db.undo), nil
}

// RollbackTo undoes every change made after mark (a value returned by
// Savepoint in the same transaction). The transaction stays open; the
// abort is counted in Stats.
func (db *DB) RollbackTo(mark int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.inTx {
		return ErrNoTx
	}
	if mark < 0 || mark > len(db.undo) {
		return fmt.Errorf("sqldb: savepoint %d out of range (undo depth %d)", mark, len(db.undo))
	}
	for i := len(db.undo) - 1; i >= mark; i-- {
		db.undo[i]()
	}
	db.undo = db.undo[:mark]
	db.stats.Aborts++
	return nil
}

// pushUndo records a compensation action when inside a transaction.
func (db *DB) pushUndo(fn func()) {
	if db.inTx {
		db.undo = append(db.undo, fn)
	}
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

func (db *DB) execCreate(st CreateTable) (Result, error) {
	if _, exists := db.tables[st.Name]; exists {
		if st.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: table %s already exists", st.Name)
	}
	t, err := newTable(st)
	if err != nil {
		return Result{}, err
	}
	db.tables[st.Name] = t
	db.pushUndo(func() { delete(db.tables, st.Name) })
	return Result{}, nil
}

func (db *DB) execDrop(st DropTable) (Result, error) {
	t, exists := db.tables[st.Name]
	if !exists {
		if st.IfExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("%w: %s", ErrNoTable, st.Name)
	}
	delete(db.tables, st.Name)
	db.pushUndo(func() { db.tables[st.Name] = t })
	return Result{}, nil
}

func (db *DB) execInsert(st Insert, args []Value) (Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return Result{}, err
	}
	cols := st.Cols
	if len(cols) == 0 {
		cols = make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Name
		}
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		if colIdx[i], err = t.colIndex(c); err != nil {
			return Result{}, err
		}
	}
	n := 0
	for _, exprs := range st.Rows {
		if len(exprs) != len(cols) {
			return Result{}, fmt.Errorf("sqldb: %d values for %d columns in %s", len(exprs), len(cols), t.Name)
		}
		row := make([]Value, len(t.Cols))
		for i, e := range exprs {
			v, err := evalExpr(e, nil, nil, args)
			if err != nil {
				return Result{}, err
			}
			if row[colIdx[i]], err = coerce(v, t.Cols[colIdx[i]].Kind); err != nil {
				return Result{}, err
			}
		}
		key := t.key(row)
		if _, dup := t.rows[key]; dup {
			return Result{}, fmt.Errorf("%w: %s", ErrDuplicate, t.Name)
		}
		t.put(key, row)
		db.stats.RowsInserted++
		db.pushUndo(func() { t.del(key) })
		n++
	}
	return Result{Affected: n}, nil
}

// matchRows returns the keys of rows satisfying the WHERE conjuncts,
// using the PK index when the conjuncts pin every PK column by equality.
func (db *DB) matchRows(t *Table, where []Cond, args []Value) ([]string, error) {
	return db.matchRowsN(t, where, args, -1)
}

// matchRowsN is matchRows with an optional bound on matches (max < 0 =
// unbounded). Because scanning follows PK order, a bounded match is the
// ORDER-BY-PK-prefix LIMIT fast path.
func (db *DB) matchRowsN(t *Table, where []Cond, args []Value, max int) ([]string, error) {
	conds := make([]compiledCond, 0, len(where))
	for _, c := range where {
		idx, err := t.colIndex(c.Col)
		if err != nil {
			return nil, err
		}
		v, err := evalExpr(c.Val, nil, nil, args)
		if err != nil {
			return nil, err
		}
		conds = append(conds, compiledCond{col: idx, op: c.Op, val: v})
	}
	// PK fast path: every PK column pinned by equality.
	if key, ok := pkLookup(t, conds); ok {
		row, exists := t.rows[key]
		if !exists {
			return nil, nil
		}
		db.stats.RowsRead++
		if !rowMatches(row, conds) {
			return nil, nil
		}
		return []string{key}, nil
	}
	// PK-prefix range: when the leading PK columns are pinned by
	// equality, only the matching key range needs scanning (the key
	// encoding is prefix-ordered), as a clustered-index range scan would.
	scan := t.sortedKeys()
	if lo, hi, ok := pkPrefixRange(t, conds); ok {
		start := sort.SearchStrings(scan, lo)
		end := sort.SearchStrings(scan, hi)
		scan = scan[start:end]
	}
	// Matched rows count as reads; rows merely examined count as scans,
	// which the engines price like an indexed range scan (see
	// Engine.PerRowScan).
	var keys []string
	for _, k := range scan {
		if rowMatches(t.rows[k], conds) {
			db.stats.RowsRead++
			keys = append(keys, k)
			if max >= 0 && len(keys) >= max {
				break
			}
		} else {
			db.stats.RowsScanned++
		}
	}
	return keys, nil
}

// pkPrefixRange returns the key range [lo, hi) covering rows whose
// leading PK columns equal the pinned values, and ok=false when the first
// PK column is not pinned by equality.
func pkPrefixRange(t *Table, conds []compiledCond) (lo, hi string, ok bool) {
	pinned := make(map[int]Value, len(conds))
	for _, c := range conds {
		if c.op == OpEq {
			pinned[c.col] = c.val
		}
	}
	prefix := ""
	n := 0
	for _, pk := range t.PK {
		v, isPinned := pinned[pk]
		if !isPinned {
			break
		}
		cv, err := coerce(v, t.Cols[pk].Kind)
		if err != nil {
			return "", "", false
		}
		if n > 0 {
			prefix += "\x00"
		}
		prefix += encodeKeyPart(cv)
		n++
	}
	if n == 0 {
		return "", "", false
	}
	// Keys with this prefix continue with "\x00" (more PK columns) or end
	// exactly here; "\xff" upper-bounds both since encodeKeyPart output
	// never starts with bytes >= 0xf8.
	return prefix, prefix + "\xff", true
}

type compiledCond struct {
	col int
	op  CondOp
	val Value
}

// orderFollowsPK reports whether ordering by st.OrderBy ascending is
// already the PK scan order, i.e. the column is a PK column and every PK
// column before it is pinned by equality in the WHERE clause.
func orderFollowsPK(t *Table, st Select) bool {
	oc, err := t.colIndex(st.OrderBy)
	if err != nil {
		return false
	}
	pinned := make(map[string]bool, len(st.Where))
	for _, c := range st.Where {
		if c.Op == OpEq {
			pinned[c.Col] = true
		}
	}
	for _, pk := range t.PK {
		if pk == oc {
			return true
		}
		if !pinned[t.Cols[pk].Name] {
			return false
		}
	}
	return false
}

func pkLookup(t *Table, conds []compiledCond) (string, bool) {
	pinned := make(map[int]Value, len(t.PK))
	for _, c := range conds {
		if c.op == OpEq {
			pinned[c.col] = c.val
		}
	}
	row := make([]Value, len(t.Cols))
	for _, pk := range t.PK {
		v, ok := pinned[pk]
		if !ok {
			return "", false
		}
		cv, err := coerce(v, t.Cols[pk].Kind)
		if err != nil {
			return "", false
		}
		row[pk] = cv
	}
	return t.key(row), true
}

func rowMatches(row []Value, conds []compiledCond) bool {
	for _, c := range conds {
		cmp := compareValues(row[c.col], c.val)
		ok := false
		switch c.op {
		case OpEq:
			ok = cmp == 0
		case OpNe:
			ok = cmp != 0
		case OpLt:
			ok = cmp < 0
		case OpLe:
			ok = cmp <= 0
		case OpGt:
			ok = cmp > 0
		case OpGe:
			ok = cmp >= 0
		}
		if !ok {
			return false
		}
	}
	return true
}

func (db *DB) execSelect(st Select, args []Value) (Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return Result{}, err
	}
	// LIMIT fast path: scanning follows PK order, so when the ORDER BY
	// column is the PK column right after the equality-pinned prefix (or
	// there is no ORDER BY), matching can stop at the limit.
	max := -1
	if st.Limit >= 0 && !st.Desc && (st.OrderBy == "" || orderFollowsPK(t, st)) {
		max = st.Limit
	}
	keys, err := db.matchRowsN(t, st.Where, args, max)
	if err != nil {
		return Result{}, err
	}
	// Aggregate query?
	if len(st.Exprs) > 0 && st.Exprs[0].Agg != "" {
		return db.aggregate(t, st, keys)
	}
	// Column projection.
	var proj []int
	var cols []string
	for _, se := range st.Exprs {
		if se.Star {
			for i, c := range t.Cols {
				proj = append(proj, i)
				cols = append(cols, c.Name)
			}
			continue
		}
		if se.Agg != "" {
			return Result{}, fmt.Errorf("sqldb: cannot mix aggregates and columns")
		}
		i, err := t.colIndex(se.Col)
		if err != nil {
			return Result{}, err
		}
		proj = append(proj, i)
		cols = append(cols, se.Col)
	}
	if st.OrderBy != "" {
		oc, err := t.colIndex(st.OrderBy)
		if err != nil {
			return Result{}, err
		}
		sort.SliceStable(keys, func(i, j int) bool {
			c := compareValues(t.rows[keys[i]][oc], t.rows[keys[j]][oc])
			if st.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if st.Limit >= 0 && len(keys) > st.Limit {
		keys = keys[:st.Limit]
	}
	out := make([][]Value, 0, len(keys))
	for _, k := range keys {
		row := t.rows[k]
		r := make([]Value, len(proj))
		for i, p := range proj {
			r[i] = row[p]
		}
		out = append(out, r)
	}
	return Result{Cols: cols, Rows: out}, nil
}

func (db *DB) aggregate(t *Table, st Select, keys []string) (Result, error) {
	outs := make([]Value, len(st.Exprs))
	cols := make([]string, len(st.Exprs))
	for i, se := range st.Exprs {
		if se.Agg == "" {
			return Result{}, fmt.Errorf("sqldb: cannot mix aggregates and columns")
		}
		cols[i] = se.Agg
		switch se.Agg {
		case "count":
			if se.Col == "" {
				outs[i] = int64(len(keys))
				continue
			}
			ci, err := t.colIndex(se.Col)
			if err != nil {
				return Result{}, err
			}
			if se.Distinct {
				seen := make(map[string]bool)
				for _, k := range keys {
					seen[formatValue(t.rows[k][ci])] = true
				}
				outs[i] = int64(len(seen))
			} else {
				n := int64(0)
				for _, k := range keys {
					if t.rows[k][ci] != nil {
						n++
					}
				}
				outs[i] = n
			}
		case "sum":
			ci, err := t.colIndex(se.Col)
			if err != nil {
				return Result{}, err
			}
			var fsum float64
			var isum int64
			isInt := t.Cols[ci].Kind == KindInt
			for _, k := range keys {
				switch v := t.rows[k][ci].(type) {
				case int64:
					isum += v
					fsum += float64(v)
				case float64:
					fsum += v
				}
			}
			if isInt {
				outs[i] = isum
			} else {
				outs[i] = fsum
			}
		case "min", "max":
			ci, err := t.colIndex(se.Col)
			if err != nil {
				return Result{}, err
			}
			var best Value
			for _, k := range keys {
				v := t.rows[k][ci]
				if v == nil {
					continue
				}
				if best == nil ||
					(se.Agg == "min" && compareValues(v, best) < 0) ||
					(se.Agg == "max" && compareValues(v, best) > 0) {
					best = v
				}
			}
			outs[i] = best
		default:
			return Result{}, fmt.Errorf("sqldb: unknown aggregate %q", se.Agg)
		}
	}
	return Result{Cols: cols, Rows: [][]Value{outs}}, nil
}

func (db *DB) execUpdate(st Update, args []Value) (Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return Result{}, err
	}
	keys, err := db.matchRows(t, st.Where, args)
	if err != nil {
		return Result{}, err
	}
	type setOp struct {
		col int
		val Expr
	}
	sets := make([]setOp, len(st.Set))
	for i, a := range st.Set {
		ci, err := t.colIndex(a.Col)
		if err != nil {
			return Result{}, err
		}
		for _, pk := range t.PK {
			if pk == ci {
				return Result{}, fmt.Errorf("sqldb: cannot update primary key column %q", a.Col)
			}
		}
		sets[i] = setOp{col: ci, val: a.Val}
	}
	for _, k := range keys {
		row := t.rows[k]
		old := append([]Value(nil), row...)
		for _, s := range sets {
			v, err := evalExpr(s.val, t, row, args)
			if err != nil {
				return Result{}, err
			}
			if row[s.col], err = coerce(v, t.Cols[s.col].Kind); err != nil {
				return Result{}, err
			}
		}
		db.stats.RowsWritten++
		key := k
		db.pushUndo(func() { t.rows[key] = old })
	}
	return Result{Affected: len(keys)}, nil
}

func (db *DB) execDelete(st Delete, args []Value) (Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return Result{}, err
	}
	keys, err := db.matchRows(t, st.Where, args)
	if err != nil {
		return Result{}, err
	}
	for _, k := range keys {
		old := t.rows[k]
		t.del(k)
		db.stats.RowsDeleted++
		key := k
		db.pushUndo(func() { t.put(key, old) })
	}
	return Result{Affected: len(keys)}, nil
}

// evalExpr evaluates a scalar expression. t/row are nil outside row
// context (INSERT values, WHERE right-hand sides).
func evalExpr(e Expr, t *Table, row []Value, args []Value) (Value, error) {
	switch x := e.(type) {
	case Lit:
		return x.V, nil
	case Param:
		if x.N >= len(args) {
			return nil, fmt.Errorf("sqldb: missing argument %d", x.N)
		}
		return normalizeArg(args[x.N]), nil
	case ColRef:
		if t == nil || row == nil {
			return nil, fmt.Errorf("sqldb: column %q not allowed here", x.Name)
		}
		i, err := t.colIndex(x.Name)
		if err != nil {
			return nil, err
		}
		return row[i], nil
	case BinExpr:
		l, err := evalExpr(x.L, t, row, args)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(x.R, t, row, args)
		if err != nil {
			return nil, err
		}
		return arith(x.Op, l, r)
	default:
		return nil, fmt.Errorf("sqldb: unknown expression %T", e)
	}
}

// normalizeArg widens Go integer/float arguments to the engine types.
func normalizeArg(v Value) Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

func arith(op byte, l, r Value) (Value, error) {
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case '+':
			return li + ri, nil
		case '-':
			return li - ri, nil
		case '*':
			return li * ri, nil
		}
	}
	lf, lOK := asFloat(l)
	rf, rOK := asFloat(r)
	if !lOK || !rOK {
		return nil, fmt.Errorf("sqldb: arithmetic on non-numeric values %T %c %T", l, op, r)
	}
	switch op {
	case '+':
		return lf + rf, nil
	case '-':
		return lf - rf, nil
	case '*':
		return lf * rf, nil
	}
	return nil, fmt.Errorf("sqldb: unknown operator %c", op)
}

func asFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}
