// TPC-C: the paper's second benchmark, running the full five-transaction
// mix against a state-machine-replicated deployment. All randomness is
// resolved by the workload generator into procedure arguments, so the
// replicas execute deterministically and stay identical.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"shadowdb"
	"shadowdb/internal/bench/tpcc"
)

func main() {
	scale := tpcc.Small() // use tpcc.Full() for the paper's 1-warehouse scale
	cluster, err := shadowdb.Open(shadowdb.Config{
		Replication: shadowdb.SMR,
		Engines:     []string{"h2", "h2", "h2"},
		Procedures:  tpcc.Registry(scale),
		Setup:       tpcc.SetupFunc(scale),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	cli, err := cluster.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cli.Close() }()

	gen := tpcc.NewGenerator(scale, 42)
	lat := make(map[string][]time.Duration)
	aborted := 0
	const txs = 200
	for i := 0; i < txs; i++ {
		typ, args := gen.Next()
		start := time.Now()
		res, err := cli.ExecTimeout(30*time.Second, typ, args...)
		if err != nil {
			log.Fatalf("%s: %v", typ, err)
		}
		lat[typ] = append(lat[typ], time.Since(start))
		if res.Aborted {
			aborted++ // the TPC-C 1% NewOrder rollback case
		}
	}

	fmt.Printf("ran %d TPC-C transactions (%d deterministic rollbacks)\n", txs, aborted)
	types := make([]string, 0, len(lat))
	for typ := range lat {
		types = append(types, typ)
	}
	sort.Strings(types)
	fmt.Printf("%-14s %6s %12s\n", "type", "count", "mean latency")
	for _, typ := range types {
		var sum time.Duration
		for _, d := range lat[typ] {
			sum += d
		}
		fmt.Printf("%-14s %6d %12v\n", typ, len(lat[typ]),
			(sum / time.Duration(len(lat[typ]))).Round(10*time.Microsecond))
	}

	// Replicas converged on identical state.
	db0, _ := cluster.ReplicaDB(0)
	res, err := db0.Exec("SELECT COUNT(*) FROM orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders on replica 0 after the run: %v\n", res.Rows[0][0])
}
