// Lamport: the paper's running example (Fig. 3) end to end — the whole
// methodology on one page. The CLK specification is built from LoE event
// classes, compiled to a GPM term program, optimized (recursion merging +
// CSE), checked bisimilar to the native compilation, mechanically checked
// against Lamport's clock condition, and finally run.
package main

import (
	"fmt"
	"log"

	"shadowdb/internal/gpm"
	"shadowdb/internal/interp"
	"shadowdb/internal/loe"
	"shadowdb/internal/msg"
)

func main() {
	// 1. The constructive specification (Fig. 3 of the paper): a ring of
	// three processes forwarding a counter, each stamping its clock.
	spec := loe.ClkRing(3)
	fmt.Printf("CLK specification (%d class-AST nodes):\n  %s\n\n",
		spec.Nodes(), loe.Render(spec.Main))

	// 2. Compile to a GPM term program and optimize it (the paper's
	// program optimizer: "merges nested recursive functions into one and
	// also applies common subexpression elimination").
	plain := interp.CompileSpec(spec)
	opt := interp.OptimizeSpec(spec)
	fmt.Printf("GPM program: %d term nodes; optimized: %d term nodes\n",
		interp.Size(plain), interp.Size(opt))

	// 3. Check the optimized program bisimilar to the native compilation
	// (the ∼ relation of Fig. 7, established by testing here).
	ev := &interp.Evaluator{}
	tp, err := interp.NewProcess(opt, loe.RingLoc(0), ev)
	if err != nil {
		log.Fatal(err)
	}
	inputs := []msg.Msg{
		msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0}),
		msg.M(loe.ClkHeader, loe.ClkBody{Val: 1, TS: 5}),
		msg.M("noise", nil),
		msg.M(loe.ClkHeader, loe.ClkBody{Val: 2, TS: 2}),
	}
	if err := interp.Bisimilar(tp, loe.NewProcess(spec.Main, loe.RingLoc(0)), inputs); err != nil {
		log.Fatalf("bisimulation failed: %v", err)
	}
	fmt.Println("optimized program is bisimilar to the native compilation")

	// 4. Run the ring and verify Lamport's clock condition over the
	// induced event ordering: e1 -> e2 implies LC(e1) < LC(e2).
	r := gpm.NewRunner(spec.System())
	r.Inject(loe.RingLoc(0), msg.M(loe.ClkHeader, loe.ClkBody{Val: 0, TS: 0}))
	if _, err := r.Run(12); err != nil {
		log.Fatal(err)
	}
	eo := loe.FromTrace(r.Trace())
	den := loe.Denote(loe.ClkClock(), eo)
	clocks := make([]int, len(den))
	for i, vals := range den {
		clocks[i] = vals[0].(int)
	}
	for i := range eo.Events {
		for j := range eo.Events {
			if eo.HappensBefore(i, j) && clocks[i] >= clocks[j] {
				log.Fatalf("clock condition violated: e%d -> e%d but LC %d >= %d",
					i, j, clocks[i], clocks[j])
			}
		}
	}
	fmt.Println("clock condition holds on the executed event ordering:")
	for i, e := range r.Trace() {
		body := e.In.Body.(loe.ClkBody)
		fmt.Printf("  event %2d at %s: value=%v stamped-clock=%d\n",
			i, e.Loc, body.Val, clocks[i])
	}
}
