// Quickstart: a three-replica, state-machine-replicated SQL database in
// one process. Transactions are typed, deterministic procedures; the
// total order broadcast service (generated from the LoE specification of
// the Paxos Synod protocol) orders them, every replica executes them, and
// the client takes the first answer.
package main

import (
	"fmt"
	"log"

	"shadowdb"
)

func main() {
	registry := shadowdb.Registry{
		"put": func(db *shadowdb.DB, args []any) (shadowdb.ProcResult, error) {
			_, err := db.Exec("INSERT INTO kv VALUES (?, ?)", args[0], args[1])
			return shadowdb.ProcResult{}, err
		},
		"get": func(db *shadowdb.DB, args []any) (shadowdb.ProcResult, error) {
			res, err := db.Exec("SELECT v FROM kv WHERE k = ?", args[0])
			if err != nil {
				return shadowdb.ProcResult{}, err
			}
			return shadowdb.ProcResult{Cols: res.Cols, Rows: res.Rows}, nil
		},
	}

	cluster, err := shadowdb.Open(shadowdb.Config{
		Replication: shadowdb.SMR,
		Procedures:  registry,
		Setup: func(db *shadowdb.DB) error {
			_, err := db.Exec("CREATE TABLE kv (k TEXT PRIMARY KEY, v TEXT)")
			return err
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	cli, err := cluster.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cli.Close() }()

	if _, err := cli.Exec("put", "greeting", "hello, replicated world"); err != nil {
		log.Fatal(err)
	}
	res, err := cli.Exec("get", "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get(greeting) = %q\n", res.Rows[0][0])

	// Every replica holds the row: the state machines marched in lock
	// step through the total order.
	for i := 0; i < 3; i++ {
		db, err := cluster.ReplicaDB(i)
		if err != nil {
			log.Fatal(err)
		}
		r, err := db.Exec("SELECT COUNT(*) FROM kv")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replica %d (%s engine): %d rows\n", i, db.Engine().Name, r.Rows[0][0])
	}
}
