// Bank: the paper's micro-benchmark domain on primary-backup replication,
// with a live demonstration of the recovery protocol — the primary
// crashes mid-run, the backup detects it, agrees on a new configuration
// through the total order broadcast service, promotes itself, transfers
// its state to the spare, and the clients' retried transactions complete
// against the new configuration.
package main

import (
	"fmt"
	"log"
	"time"

	"shadowdb"
	"shadowdb/internal/core"
)

func main() {
	cluster, err := shadowdb.Open(shadowdb.Config{
		Replication: shadowdb.PBR,
		// The paper's diversity deployment: a different database engine
		// per replica masks correlated environment failures.
		Engines:    []string{"h2", "hsqldb", "derby"},
		Procedures: core.BankRegistry(),
		Setup:      func(db *shadowdb.DB) error { return core.BankSetup(db, 1000) },
		Timing: core.Timing{
			HeartbeatEvery: 50 * time.Millisecond,
			SuspectAfter:   400 * time.Millisecond,
			ClientRetry:    400 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	cli, err := cluster.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cli.Close() }()

	deposit := func(account, amount int64) {
		res, err := cli.ExecTimeout(30*time.Second, "deposit", account, amount)
		if err != nil {
			log.Fatalf("deposit: %v", err)
		}
		if res.Aborted {
			log.Fatalf("deposit to account %d aborted", account)
		}
	}
	balance := func(account int64) int64 {
		res, err := cli.ExecTimeout(30*time.Second, "balance", account)
		if err != nil {
			log.Fatalf("balance: %v", err)
		}
		return res.Rows[0][0].(int64)
	}

	fmt.Println("normal case: depositing through the primary (h2), backed by hsqldb...")
	for i := int64(0); i < 20; i++ {
		deposit(i%5, 10)
	}
	fmt.Printf("balance(0) = %d\n", balance(0))

	fmt.Println("\ncrashing the primary...")
	if err := cluster.Crash(0); err != nil {
		log.Fatal(err)
	}
	start := time.Now()

	// The client retries transparently; this call rides through failure
	// detection, reconfiguration via the broadcast service, election of
	// the backup as the new primary, and the state transfer to the spare.
	deposit(0, 10)
	fmt.Printf("first post-crash transaction committed after %v\n",
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("balance(0) = %d (durable across the failover)\n", balance(0))

	// The spare (derby) now holds the full database.
	db, err := cluster.ReplicaDB(2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*), SUM(balance) FROM accounts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spare replica (%s engine) after state transfer: %v accounts, total balance %v\n",
		db.Engine().Name, res.Rows[0][0], res.Rows[0][1])
}
