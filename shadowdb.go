// Package shadowdb is the public API of this repository: an embeddable,
// replicated, strictly serializable SQL database in the architecture of
// the paper "Developing Correctly Replicated Databases Using Formal
// Tools" (DSN 2014).
//
// A Cluster bundles database replicas, a Paxos-backed total order
// broadcast service, and either primary-backup (PBR) or state machine
// replication (SMR), all running in-process over the channel network.
// Transactions are typed, deterministic procedures registered by name;
// clients get exactly-once execution under retry and strict
// serializability.
//
//	cluster, err := shadowdb.Open(shadowdb.Config{
//	    Replication: shadowdb.SMR,
//	    Procedures:  myRegistry,
//	    Setup:       mySchemaSetup,
//	})
//	defer cluster.Close()
//	cli := cluster.Client()
//	res, err := cli.Exec("deposit", int64(42), int64(10))
//
// The internal packages expose the layers this API is built from: the
// LoE specification combinators (internal/loe), the term interpreter and
// optimizer (internal/interp), the verified-by-checking consensus
// protocols (internal/consensus/...), the broadcast service
// (internal/broadcast), and the replication core (internal/core).
package shadowdb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shadowdb/internal/broadcast"
	"shadowdb/internal/core"
	"shadowdb/internal/gpm"
	"shadowdb/internal/msg"
	"shadowdb/internal/network"
	"shadowdb/internal/obs"
	"shadowdb/internal/runtime"
	"shadowdb/internal/sqldb"
)

// Mode selects the replication protocol.
type Mode int

// The replication protocols of the paper.
const (
	// PBR is primary-backup replication: a hand-written normal case with
	// recovery driven by the total order broadcast service.
	PBR Mode = iota + 1
	// SMR is state machine replication: every transaction is ordered by
	// the broadcast service and executed by every replica.
	SMR
)

// Registry maps transaction type names to procedures; see core.Procedure.
type Registry = core.Registry

// Procedure is a deterministic transaction body.
type Procedure = core.Procedure

// ProcResult is a procedure's result set.
type ProcResult = core.ProcResult

// ErrAbort requests a deterministic transaction abort from a procedure.
var ErrAbort = core.ErrAbort

// DB is the SQL database handle procedures operate on.
type DB = sqldb.DB

// Result is a completed transaction's outcome.
type Result struct {
	// Aborted reports a deterministic abort (not an error).
	Aborted bool
	// Cols and Rows hold the procedure's result set.
	Cols []string
	Rows [][]any
}

// Config describes a cluster.
type Config struct {
	// Replication selects PBR or SMR; the default is PBR.
	Replication Mode
	// Replicas is the number of database replicas; default 3 (for PBR:
	// primary + backup + spare).
	Replicas int
	// Engines lists the database engine per replica ("h2", "hsqldb",
	// "derby", ...). Shorter lists repeat the last entry; empty means
	// the paper's diverse deployment h2/hsqldb/derby.
	Engines []string
	// Procedures is the transaction registry shared by all replicas.
	Procedures Registry
	// Setup installs the initial schema and population on every replica
	// that starts with data.
	Setup func(*DB) error
	// Timing overrides the failure-detection knobs (zero = defaults).
	Timing core.Timing
	// Obs receives the cluster's runtime metrics and causal trace events.
	// Nil means the process-wide obs.Default; obs.Nop() disables
	// collection entirely (one atomic load per step on the hot path).
	Obs *obs.Obs
}

// Errors of the public API.
var (
	// ErrTimeout is returned when a transaction gets no answer in time.
	ErrTimeout = errors.New("shadowdb: transaction timed out")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("shadowdb: cluster closed")
)

// Cluster is a running in-process deployment.
type Cluster struct {
	cfg   Config
	hub   *network.Hub
	hosts []*runtime.Host
	// stepMu serializes every process step so state inspection is safe.
	stepMu sync.Mutex

	pbr *core.PBRSystem
	smr *core.SMRSystem

	mu      sync.Mutex
	clients int
	closed  bool
}

// Open starts a cluster.
func Open(cfg Config) (*Cluster, error) {
	if cfg.Replication == 0 {
		cfg.Replication = PBR
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if len(cfg.Engines) == 0 {
		cfg.Engines = []string{"h2", "hsqldb", "derby"}
	}
	if cfg.Procedures == nil {
		return nil, fmt.Errorf("shadowdb: Config.Procedures is required")
	}
	if cfg.Timing == (core.Timing{}) {
		cfg.Timing = core.Timing{
			HeartbeatEvery: 50 * time.Millisecond,
			SuspectAfter:   500 * time.Millisecond,
			ClientRetry:    500 * time.Millisecond,
		}
	}

	c := &Cluster{cfg: cfg, hub: network.NewHub()}
	engine := func(i int) string {
		if i < len(cfg.Engines) {
			return cfg.Engines[i]
		}
		return cfg.Engines[len(cfg.Engines)-1]
	}
	var rlocs, blocs []msg.Loc
	for i := 0; i < cfg.Replicas; i++ {
		rlocs = append(rlocs, msg.Loc(fmt.Sprintf("r%d", i+1)))
	}
	for i := 0; i < 3; i++ {
		blocs = append(blocs, msg.Loc(fmt.Sprintf("b%d", i+1)))
	}
	mkDB := func(populate bool) func(msg.Loc) (*sqldb.DB, error) {
		return func(slf msg.Loc) (*sqldb.DB, error) {
			idx := 0
			for i, l := range rlocs {
				if l == slf {
					idx = i
				}
			}
			db, err := sqldb.Open(engine(idx) + ":mem:" + string(slf))
			if err != nil {
				return nil, err
			}
			if populate && cfg.Setup != nil {
				if err := cfg.Setup(db); err != nil {
					return nil, err
				}
			}
			return db, nil
		}
	}

	switch cfg.Replication {
	case PBR:
		dep := core.PBRDeployment{
			Pool:           rlocs,
			InitialMembers: min(2, cfg.Replicas),
			BcastNodes:     blocs,
			Timing:         cfg.Timing,
		}
		var buildErr error
		c.pbr = core.NewPBRSystem(dep, cfg.Procedures, func(slf msg.Loc) *sqldb.DB {
			populate := slf == rlocs[0] || (len(rlocs) > 1 && slf == rlocs[1])
			db, err := mkDB(populate)(slf)
			if err != nil {
				buildErr = err
				return sqldb.New(sqldb.Engine{Name: "broken"})
			}
			return db
		})
		if buildErr != nil {
			return nil, buildErr
		}
		bgen := broadcast.Spec(c.pbr.Bcast).Generator()
		for _, l := range blocs {
			if _, err := c.host(l, bgen(l)); err != nil {
				return nil, err
			}
		}
		for _, l := range rlocs {
			r := c.pbr.Replicas[l]
			h, err := c.host(l, r)
			if err != nil {
				return nil, err
			}
			h.Emit(r.Start()) // boot the failure detector
		}
	case SMR:
		var buildErr error
		c.smr = core.NewSMRSystem(blocs[:min(3, cfg.Replicas)], rlocs[:min(3, cfg.Replicas)],
			cfg.Procedures, func(slf msg.Loc) *sqldb.DB {
				db, err := mkDB(true)(slf)
				if err != nil {
					buildErr = err
					return sqldb.New(sqldb.Engine{Name: "broken"})
				}
				return db
			})
		if buildErr != nil {
			return nil, buildErr
		}
		bgen := broadcast.Spec(c.smr.Bcast).Generator()
		for _, l := range c.smr.Nodes {
			if _, err := c.host(l, bgen(l)); err != nil {
				return nil, err
			}
		}
		for l, r := range c.smr.Replicas {
			if _, err := c.host(l, r); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("shadowdb: unknown replication mode %d", cfg.Replication)
	}
	return c, nil
}

// host registers a location and starts its process, serialized by stepMu.
func (c *Cluster) host(l msg.Loc, p gpm.Process) (*runtime.Host, error) {
	tr, err := c.hub.Register(l)
	if err != nil {
		return nil, err
	}
	h := runtime.NewHost(l, tr, &lockedProc{mu: &c.stepMu, p: p})
	if c.cfg.Obs != nil {
		h.Obs = c.cfg.Obs
	}
	h.Start()
	c.hosts = append(c.hosts, h)
	return h, nil
}

type lockedProc struct {
	mu *sync.Mutex
	p  gpm.Process
}

func (l *lockedProc) Step(in msg.Msg) (gpm.Process, []msg.Directive) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next, outs := l.p.Step(in)
	l.p = next
	return l, outs
}

func (l *lockedProc) Halted() bool { return l.p.Halted() }

// Close stops the cluster.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, h := range c.hosts {
		_ = h.Close()
	}
	return c.hub.Close()
}

// Crash kills replica i (0-based), dropping all its traffic — for
// exercising recovery.
func (c *Cluster) Crash(i int) error {
	loc := msg.Loc(fmt.Sprintf("r%d", i+1))
	for _, h := range c.hosts {
		if h.Self() == loc {
			return h.Close()
		}
	}
	return fmt.Errorf("shadowdb: no replica %d", i)
}

// ReplicaDB exposes replica i's database for inspection (tests, audits).
// The returned handle is shared with the running replica; use read-only.
func (c *Cluster) ReplicaDB(i int) (*DB, error) {
	loc := msg.Loc(fmt.Sprintf("r%d", i+1))
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	if c.pbr != nil {
		if r, ok := c.pbr.Replicas[loc]; ok {
			return r.Executor().DB, nil
		}
	}
	if c.smr != nil {
		if r, ok := c.smr.Replicas[loc]; ok {
			return r.Executor().DB, nil
		}
	}
	return nil, fmt.Errorf("shadowdb: no replica %d", i)
}

// Client creates a synchronous client for the cluster. Clients are not
// safe for concurrent use; create one per goroutine.
func (c *Cluster) Client() (*Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.clients++
	loc := msg.Loc(fmt.Sprintf("client%d", c.clients))
	tr, err := c.hub.Register(loc)
	if err != nil {
		return nil, err
	}
	var rlocs, blocs []msg.Loc
	if c.pbr != nil {
		rlocs = c.pbr.Dep.Pool
		blocs = c.pbr.Dep.BcastNodes
	} else {
		for l := range c.smr.Replicas {
			rlocs = append(rlocs, l)
		}
		blocs = c.smr.Nodes
	}
	mode := core.ModePBR
	if c.cfg.Replication == SMR {
		mode = core.ModeSMR
	}
	return &Client{
		tr: tr,
		sm: &core.Client{
			Slf: loc, Mode: mode, Replicas: rlocs, BcastNodes: blocs,
			Retry: c.cfg.Timing.ClientRetry,
		},
	}, nil
}

// Client is a synchronous ShadowDB client.
type Client struct {
	tr network.Transport
	sm *core.Client
}

// Exec runs one registered transaction and waits for its result.
func (cl *Client) Exec(txType string, args ...any) (Result, error) {
	return cl.ExecTimeout(30*time.Second, txType, args...)
}

// ExecTimeout is Exec with an explicit deadline.
func (cl *Client) ExecTimeout(timeout time.Duration, txType string, args ...any) (Result, error) {
	emit := func(outs []msg.Directive) {
		for _, o := range outs {
			o := o
			if o.Delay > 0 {
				time.AfterFunc(o.Delay, func() {
					_ = cl.tr.Send(msg.Envelope{From: cl.sm.Slf, To: o.Dest, M: o.M})
				})
				continue
			}
			_ = cl.tr.Send(msg.Envelope{From: cl.sm.Slf, To: o.Dest, M: o.M})
		}
	}
	emit(cl.sm.Submit(txType, args))
	deadline := time.After(timeout)
	for {
		select {
		case env, ok := <-cl.tr.Receive():
			if !ok {
				return Result{}, ErrClosed
			}
			res, outs := cl.sm.Handle(env.M)
			emit(outs)
			if res == nil {
				continue
			}
			if res.Err != "" {
				return Result{}, fmt.Errorf("shadowdb: %s", res.Err)
			}
			return Result{Aborted: res.Aborted, Cols: res.Cols, Rows: res.Rows}, nil
		case <-deadline:
			return Result{}, fmt.Errorf("%w: %s after %v", ErrTimeout, txType, timeout)
		}
	}
}

// Close releases the client.
func (cl *Client) Close() error { return cl.tr.Close() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
